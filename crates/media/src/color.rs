//! Color histograms and the QBIC similarity matrix (§2).
//!
//! "Each object has a k-element color histogram (typical values of k
//! are 64, 100, or 256)." A [`ColorSpace`] partitions the RGB cube into
//! `k` bins; a [`ColorHistogram`] is the normalized bin-mass vector of
//! an image. The entry `A[i][j]` of the similarity matrix "describes
//! the similarity between color i and color j" — following QBIC we use
//! `a_ij = 1 − d(cᵢ, cⱼ)/d_max` where `cᵢ` are bin centroid colors.

use std::fmt;

use crate::linalg::{Matrix, SymMatrix};

/// An RGB color with channels in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rgb {
    /// Red channel in `[0, 1]`.
    pub r: f64,
    /// Green channel in `[0, 1]`.
    pub g: f64,
    /// Blue channel in `[0, 1]`.
    pub b: f64,
}

impl Rgb {
    /// Creates a color, clamping channels into `[0, 1]`.
    pub fn new(r: f64, g: f64, b: f64) -> Rgb {
        Rgb {
            r: r.clamp(0.0, 1.0),
            g: g.clamp(0.0, 1.0),
            b: b.clamp(0.0, 1.0),
        }
    }

    /// Euclidean distance in RGB space.
    pub fn distance(&self, other: &Rgb) -> f64 {
        let dr = self.r - other.r;
        let dg = self.g - other.g;
        let db = self.b - other.b;
        (dr * dr + dg * dg + db * db).sqrt()
    }

    /// Pure red — the paper's favorite query color.
    pub const RED: Rgb = Rgb {
        r: 1.0,
        g: 0.0,
        b: 0.0,
    };
    /// Pure green.
    pub const GREEN: Rgb = Rgb {
        r: 0.0,
        g: 1.0,
        b: 0.0,
    };
    /// Pure blue.
    pub const BLUE: Rgb = Rgb {
        r: 0.0,
        g: 0.0,
        b: 1.0,
    };
}

/// Error constructing color-space artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum ColorError {
    /// Bins-per-channel must be ≥ 1.
    EmptySpace,
    /// A histogram had the wrong number of bins.
    DimensionMismatch {
        /// The color space's bin count.
        expected: usize,
        /// The histogram's bin count.
        got: usize,
    },
    /// Histogram mass was negative or not finite.
    InvalidMass(f64),
    /// Histogram has zero total mass and cannot be normalized.
    ZeroMass,
}

impl fmt::Display for ColorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColorError::EmptySpace => write!(f, "color space needs at least one bin"),
            ColorError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} bins, got {got}")
            }
            ColorError::InvalidMass(v) => write!(f, "invalid bin mass {v}"),
            ColorError::ZeroMass => write!(f, "histogram has zero total mass"),
        }
    }
}

impl std::error::Error for ColorError {}

/// A quantization of the RGB cube into `b³` uniform bins.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorSpace {
    bins_per_channel: usize,
    centroids: Vec<Rgb>,
}

impl ColorSpace {
    /// Uniform `b×b×b` RGB grid. `b = 4` gives the paper's typical
    /// `k = 64`; `b = 5` gives 125 (close to the quoted 100);
    /// `b = 6` gives 216 (close to 256).
    pub fn rgb_grid(bins_per_channel: usize) -> Result<ColorSpace, ColorError> {
        if bins_per_channel == 0 {
            return Err(ColorError::EmptySpace);
        }
        let b = bins_per_channel;
        let mut centroids = Vec::with_capacity(b * b * b);
        for ri in 0..b {
            for gi in 0..b {
                for bi in 0..b {
                    centroids.push(Rgb::new(
                        (ri as f64 + 0.5) / b as f64,
                        (gi as f64 + 0.5) / b as f64,
                        (bi as f64 + 0.5) / b as f64,
                    ));
                }
            }
        }
        Ok(ColorSpace {
            bins_per_channel: b,
            centroids,
        })
    }

    /// Number of bins `k`.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The centroid color of bin `i`.
    pub fn centroid(&self, i: usize) -> Rgb {
        self.centroids[i]
    }

    /// The bin index of a color.
    pub fn bin_of(&self, color: Rgb) -> usize {
        let b = self.bins_per_channel;
        let q = |v: f64| ((v * b as f64) as usize).min(b - 1);
        (q(color.r) * b + q(color.g)) * b + q(color.b)
    }

    /// The QBIC similarity matrix `A` with
    /// `a_ij = 1 − d(cᵢ, cⱼ)/d_max` over bin centroids.
    ///
    /// On the zero-sum subspace (where differences of normalized
    /// histograms live) the resulting quadratic form is nonnegative,
    /// because Euclidean distance matrices are conditionally negative
    /// definite — the bounding tests in `bounding.rs` rely on this.
    pub fn similarity_matrix(&self) -> SymMatrix {
        let k = self.k();
        let mut dmax = 0.0_f64;
        for i in 0..k {
            for j in (i + 1)..k {
                dmax = dmax.max(self.centroids[i].distance(&self.centroids[j]));
            }
        }
        let dmax = dmax.max(1e-12);
        SymMatrix::from_fn(k, |i, j| {
            1.0 - self.centroids[i].distance(&self.centroids[j]) / dmax
        })
        // lint:allow(no-panic): centroid distances are finite and dmax > 0 was checked above
        .expect("similarity entries are finite by construction")
    }

    /// The 3×k matrix `C` mapping a histogram to its average color
    /// `x̄ = C·x` (each column is a bin centroid). This is the
    /// projection behind the \[HSE+95\] distance-bounding filter.
    pub fn centroid_map(&self) -> Matrix {
        let k = self.k();
        let mut data = vec![0.0; 3 * k];
        for (j, c) in self.centroids.iter().enumerate() {
            data[j] = c.r;
            data[k + j] = c.g;
            data[2 * k + j] = c.b;
        }
        // lint:allow(no-panic): row/column counts are taken from the same centroid vector
        Matrix::from_rows(3, k, data).expect("3×k is a valid shape")
    }
}

/// A normalized color histogram over some [`ColorSpace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColorHistogram {
    bins: Vec<f64>,
}

impl ColorHistogram {
    /// Builds from raw masses, normalizing them to sum to 1.
    pub fn from_masses(masses: Vec<f64>) -> Result<ColorHistogram, ColorError> {
        if masses.is_empty() {
            return Err(ColorError::EmptySpace);
        }
        for &v in &masses {
            if !v.is_finite() || v < 0.0 {
                return Err(ColorError::InvalidMass(v));
            }
        }
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            return Err(ColorError::ZeroMass);
        }
        Ok(ColorHistogram {
            bins: masses.into_iter().map(|v| v / total).collect(),
        })
    }

    /// Builds the histogram of a collection of pixel colors.
    pub fn from_colors(space: &ColorSpace, colors: &[Rgb]) -> Result<ColorHistogram, ColorError> {
        if colors.is_empty() {
            return Err(ColorError::ZeroMass);
        }
        let mut masses = vec![0.0; space.k()];
        for &c in colors {
            masses[space.bin_of(c)] += 1.0;
        }
        ColorHistogram::from_masses(masses)
    }

    /// A histogram fully concentrated in the bin containing `color`.
    pub fn pure(space: &ColorSpace, color: Rgb) -> ColorHistogram {
        let mut masses = vec![0.0; space.k()];
        masses[space.bin_of(color)] = 1.0;
        ColorHistogram { bins: masses }
    }

    /// Number of bins.
    pub fn k(&self) -> usize {
        self.bins.len()
    }

    /// The bin masses (always summing to 1).
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The average color `x̄ = C·x`.
    pub fn average_color(&self, space: &ColorSpace) -> Result<[f64; 3], ColorError> {
        if space.k() != self.k() {
            return Err(ColorError::DimensionMismatch {
                expected: space.k(),
                got: self.k(),
            });
        }
        let mut avg = [0.0; 3];
        for (mass, c) in self.bins.iter().zip(space.centroids.iter()) {
            avg[0] += mass * c.r;
            avg[1] += mass * c.g;
            avg[2] += mass * c.b;
        }
        Ok(avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_grid_sizes_match_the_paper() {
        assert_eq!(ColorSpace::rgb_grid(4).unwrap().k(), 64);
        assert_eq!(ColorSpace::rgb_grid(5).unwrap().k(), 125);
        assert_eq!(ColorSpace::rgb_grid(6).unwrap().k(), 216);
        assert!(ColorSpace::rgb_grid(0).is_err());
    }

    #[test]
    fn bin_of_roundtrips_centroids() {
        let space = ColorSpace::rgb_grid(4).unwrap();
        for i in 0..space.k() {
            assert_eq!(space.bin_of(space.centroid(i)), i);
        }
    }

    #[test]
    fn bin_of_handles_boundary_colors() {
        let space = ColorSpace::rgb_grid(4).unwrap();
        // channel = 1.0 must land in the top bin, not overflow.
        let idx = space.bin_of(Rgb::new(1.0, 1.0, 1.0));
        assert_eq!(idx, space.k() - 1);
    }

    #[test]
    fn similarity_matrix_has_unit_diagonal_and_bounds() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let a = space.similarity_matrix();
        for i in 0..a.dim() {
            assert!((a.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..a.dim() {
                assert!(a.get(i, j) >= -1e-12 && a.get(i, j) <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn similarity_quadratic_form_nonnegative_on_differences() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let a = space.similarity_matrix();
        let h1 = ColorHistogram::pure(&space, Rgb::RED);
        let h2 = ColorHistogram::pure(&space, Rgb::BLUE);
        let z: Vec<f64> = h1
            .bins()
            .iter()
            .zip(h2.bins())
            .map(|(x, y)| x - y)
            .collect();
        assert!(a.quadratic_form(&z) >= -1e-9);
    }

    #[test]
    fn histogram_normalizes() {
        let h = ColorHistogram::from_masses(vec![2.0, 6.0]).unwrap();
        assert_eq!(h.bins(), &[0.25, 0.75]);
    }

    #[test]
    fn histogram_construction_errors() {
        assert!(matches!(
            ColorHistogram::from_masses(vec![]),
            Err(ColorError::EmptySpace)
        ));
        assert!(matches!(
            ColorHistogram::from_masses(vec![1.0, -0.5]),
            Err(ColorError::InvalidMass(_))
        ));
        assert!(matches!(
            ColorHistogram::from_masses(vec![0.0, 0.0]),
            Err(ColorError::ZeroMass)
        ));
    }

    #[test]
    fn from_colors_counts_bins() {
        let space = ColorSpace::rgb_grid(2).unwrap();
        let h = ColorHistogram::from_colors(
            &space,
            &[
                Rgb::new(0.1, 0.1, 0.1),
                Rgb::new(0.1, 0.1, 0.1),
                Rgb::new(0.9, 0.9, 0.9),
            ],
        )
        .unwrap();
        let dark = space.bin_of(Rgb::new(0.1, 0.1, 0.1));
        let light = space.bin_of(Rgb::new(0.9, 0.9, 0.9));
        assert!((h.bins()[dark] - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.bins()[light] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_color_of_pure_histogram_is_the_centroid() {
        let space = ColorSpace::rgb_grid(4).unwrap();
        let h = ColorHistogram::pure(&space, Rgb::RED);
        let avg = h.average_color(&space).unwrap();
        let c = space.centroid(space.bin_of(Rgb::RED));
        assert!((avg[0] - c.r).abs() < 1e-12);
        assert!((avg[1] - c.g).abs() < 1e-12);
        assert!((avg[2] - c.b).abs() < 1e-12);
    }

    #[test]
    fn average_color_dimension_mismatch() {
        let space4 = ColorSpace::rgb_grid(4).unwrap();
        let space2 = ColorSpace::rgb_grid(2).unwrap();
        let h = ColorHistogram::pure(&space2, Rgb::RED);
        assert!(matches!(
            h.average_color(&space4),
            Err(ColorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn centroid_map_reproduces_average_color() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let c = space.centroid_map();
        let h = ColorHistogram::from_masses((1..=27).map(|i| i as f64).collect()).unwrap();
        let mut avg_by_map = [0.0; 3];
        c.mul_vec(h.bins(), &mut avg_by_map);
        let avg_direct = h.average_color(&space).unwrap();
        for d in 0..3 {
            assert!((avg_by_map[d] - avg_direct[d]).abs() < 1e-12);
        }
    }
}
