//! A region quadtree / hyperoctree \[Sa89\] — the *other* §2.1 victim of
//! the dimensionality curse.
//!
//! "Two popular multidimensional indexing methods, namely linear
//! quadtrees \[Sa89\] and grid files \[NHS84\], grow exponentially with
//! the dimensionality." A quadtree node over `d` dimensions splits
//! into `2^d` children at once; in 2-D that is four quadrants, in 8-D
//! it is 256 cells, in 16-D it is 65,536 — one overflowing bucket
//! allocates that many leaves regardless of where the data actually
//! is. [`QuadTree::leaf_cells`] counts them; experiment E8 plots the
//! count against the dimension next to the grid file's directory.
//!
//! The structure here is the pointer-based region tree; the *linear*
//! quadtree of \[Sa89\] stores the same leaves as a sorted list of
//! Morton codes, with identical cell counts — the metric the paper's
//! claim is about is the number of cells, which we report exactly.

use std::fmt;

use crate::geometry::{dist2, validate_point, GeometryError};
use crate::rtree::{IndexAccess, ItemId, Neighbor};

/// Error raised by quadtree operations.
#[derive(Debug, Clone, PartialEq)]
pub enum QuadError {
    /// Geometry problem with the input point.
    Geometry(GeometryError),
    /// The dimension is too large to split (2^d children would
    /// overflow memory instantly).
    DimensionTooLarge {
        /// The requested dimension.
        dim: usize,
        /// The largest supported dimension.
        max: usize,
    },
    /// A split would exceed the configured total leaf-cell budget —
    /// the dimensionality curse made concrete.
    CellOverflow {
        /// Leaf cells the split would require.
        required: u128,
        /// The configured cap.
        limit: u128,
    },
    /// A point outside the unit cube `[0, 1]^d` was inserted.
    OutOfBounds,
}

impl fmt::Display for QuadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuadError::Geometry(e) => write!(f, "{e}"),
            QuadError::DimensionTooLarge { dim, max } => {
                write!(f, "dimension {dim} exceeds quadtree maximum {max}")
            }
            QuadError::CellOverflow { required, limit } => {
                write!(
                    f,
                    "quadtree would need {required} leaf cells (limit {limit})"
                )
            }
            QuadError::OutOfBounds => write!(f, "quadtree points must lie in [0, 1]^d"),
        }
    }
}

impl std::error::Error for QuadError {}

impl From<GeometryError> for QuadError {
    fn from(e: GeometryError) -> Self {
        QuadError::Geometry(e)
    }
}

/// Splitting beyond this dimension is pointless: one split already
/// allocates 2^20 leaves.
const MAX_DIM: usize = 20;

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<(Vec<f64>, ItemId)>),
    /// `2^d` children, indexed by the bit pattern of per-dimension
    /// half choices.
    Internal(Vec<Node>),
}

/// A point hyperoctree over `[0, 1]^d` with capacity-triggered splits.
#[derive(Debug, Clone)]
pub struct QuadTree {
    dim: usize,
    bucket_capacity: usize,
    cell_limit: u128,
    root: Node,
    len: usize,
    leaf_cells: u128,
    max_depth: usize,
}

impl QuadTree {
    /// An empty tree. `cell_limit` caps the total number of leaf cells
    /// (the linear quadtree's storage), surfacing the curse as an
    /// explicit [`QuadError::CellOverflow`].
    pub fn new(
        dim: usize,
        bucket_capacity: usize,
        cell_limit: u128,
    ) -> Result<QuadTree, QuadError> {
        if dim == 0 {
            return Err(QuadError::Geometry(GeometryError::EmptyDimension));
        }
        if dim > MAX_DIM {
            return Err(QuadError::DimensionTooLarge { dim, max: MAX_DIM });
        }
        Ok(QuadTree {
            dim,
            bucket_capacity: bucket_capacity.max(1),
            cell_limit: cell_limit.max(1),
            root: Node::Leaf(Vec::new()),
            len: 0,
            leaf_cells: 1,
            max_depth: 24,
        })
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total leaf cells allocated (occupied *and* empty) — what a
    /// linear quadtree would store.
    pub fn leaf_cells(&self) -> u128 {
        self.leaf_cells
    }

    /// Inserts a point in `[0, 1]^d`.
    pub fn insert(&mut self, point: &[f64], id: ItemId) -> Result<(), QuadError> {
        validate_point(point)?;
        if point.len() != self.dim {
            return Err(QuadError::Geometry(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            }));
        }
        if point.iter().any(|&v| !(0.0..=1.0).contains(&v)) {
            return Err(QuadError::OutOfBounds);
        }
        // Walk to the leaf, splitting overflowing leaves on the way
        // down. Iterative with explicit cell tracking.
        let fanout = 1usize << self.dim;
        let mut node = &mut self.root;
        let mut center: Vec<f64> = vec![0.5; self.dim];
        let mut half = 0.25;
        let mut depth = 0;
        loop {
            match node {
                Node::Internal(children) => {
                    let mut idx = 0;
                    for d in 0..self.dim {
                        if point[d] >= center[d] {
                            idx |= 1 << d;
                            center[d] += half;
                        } else {
                            center[d] -= half;
                        }
                    }
                    half *= 0.5;
                    depth += 1;
                    node = &mut children[idx];
                }
                Node::Leaf(bucket) => {
                    if bucket.len() < self.bucket_capacity || depth >= self.max_depth {
                        bucket.push((point.to_vec(), id));
                        self.len += 1;
                        return Ok(());
                    }
                    // Split: replacing one leaf by 2^d leaves.
                    let required = self.leaf_cells + (fanout as u128 - 1);
                    if required > self.cell_limit {
                        return Err(QuadError::CellOverflow {
                            required,
                            limit: self.cell_limit,
                        });
                    }
                    self.leaf_cells = required;
                    let old = std::mem::take(bucket);
                    let mut children = vec![Node::Leaf(Vec::new()); fanout];
                    for (p, pid) in old {
                        let mut idx = 0;
                        for d in 0..self.dim {
                            if p[d] >= center[d] {
                                idx |= 1 << d;
                            }
                        }
                        let Node::Leaf(child) = &mut children[idx] else {
                            unreachable!("children start as leaves");
                        };
                        child.push((p, pid));
                    }
                    *node = Node::Internal(children);
                    // Loop continues: descend into the new internal node.
                }
            }
        }
    }

    /// The `k` nearest neighbors, best-first over cells.
    pub fn knn(&self, query: &[f64], k: usize) -> Result<(Vec<Neighbor>, IndexAccess), QuadError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(QuadError::Geometry(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            }));
        }
        let mut access = IndexAccess::default();
        let mut result: Vec<Neighbor> = Vec::new();
        if k == 0 {
            return Ok((result, access));
        }

        // Depth-first with box pruning (cells carry their bounds).
        struct Frame<'a> {
            node: &'a Node,
            lo: Vec<f64>,
            hi: Vec<f64>,
        }
        let mut kth = f64::INFINITY;
        let mut stack = vec![Frame {
            node: &self.root,
            lo: vec![0.0; self.dim],
            hi: vec![1.0; self.dim],
        }];
        while let Some(Frame { node, lo, hi }) = stack.pop() {
            // MINDIST² to the cell box.
            let mut d2 = 0.0;
            for (d, &q) in query.iter().enumerate() {
                let delta = if q < lo[d] {
                    lo[d] - q
                } else if q > hi[d] {
                    q - hi[d]
                } else {
                    0.0
                };
                d2 += delta * delta;
            }
            if result.len() == k && d2 > kth {
                continue;
            }
            access.nodes_visited += 1;
            match node {
                Node::Leaf(bucket) => {
                    for (p, id) in bucket {
                        access.distance_computations += 1;
                        let pd2 = dist2(p, query);
                        if result.len() < k || pd2 < kth {
                            result.push(Neighbor {
                                id: *id,
                                distance: pd2.sqrt(),
                            });
                            result.sort_by(|a, b| {
                                a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id))
                            });
                            result.truncate(k);
                            if result.len() == k {
                                kth = result[k - 1].distance * result[k - 1].distance;
                            }
                        }
                    }
                }
                Node::Internal(children) => {
                    for (idx, child) in children.iter().enumerate() {
                        let mut clo = lo.clone();
                        let mut chi = hi.clone();
                        for d in 0..self.dim {
                            let mid = (lo[d] + hi[d]) / 2.0;
                            if idx & (1 << d) != 0 {
                                clo[d] = mid;
                            } else {
                                chi[d] = mid;
                            }
                        }
                        stack.push(Frame {
                            node: child,
                            lo: clo,
                            hi: chi,
                        });
                    }
                }
            }
        }
        Ok((result, access))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect()
    }

    #[test]
    fn construction_validation() {
        assert!(QuadTree::new(0, 8, 100).is_err());
        assert!(matches!(
            QuadTree::new(32, 8, 100),
            Err(QuadError::DimensionTooLarge { dim: 32, max: 20 })
        ));
        let t = QuadTree::new(2, 8, 100).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.leaf_cells(), 1);
    }

    #[test]
    fn insert_validation() {
        let mut t = QuadTree::new(2, 8, 100).unwrap();
        assert!(t.insert(&[0.1], 0).is_err());
        assert!(matches!(
            t.insert(&[0.5, 1.5], 0),
            Err(QuadError::OutOfBounds)
        ));
        assert!(t.insert(&[0.5, f64::NAN], 0).is_err());
        t.insert(&[0.5, 0.5], 0).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_allocate_2_pow_d_cells() {
        // Capacity 1: the second point forces a split.
        let mut t2 = QuadTree::new(2, 1, 1_000).unwrap();
        t2.insert(&[0.1, 0.1], 0).unwrap();
        t2.insert(&[0.9, 0.9], 1).unwrap();
        assert_eq!(t2.leaf_cells(), 4); // 1 − 1 + 2²

        let mut t4 = QuadTree::new(4, 1, 1_000).unwrap();
        t4.insert(&[0.1; 4], 0).unwrap();
        t4.insert(&[0.9; 4], 1).unwrap();
        assert_eq!(t4.leaf_cells(), 16); // 2⁴ — the curse, per split
    }

    #[test]
    fn cell_limit_is_enforced() {
        let mut t = QuadTree::new(8, 1, 100).unwrap();
        t.insert(&[0.1; 8], 0).unwrap();
        // The split would need 256 leaves; the limit is 100.
        assert!(matches!(
            t.insert(&[0.9; 8], 1),
            Err(QuadError::CellOverflow {
                required: 256,
                limit: 100
            })
        ));
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = random_points(400, 2, 9);
        let mut t = QuadTree::new(2, 8, 1 << 20).unwrap();
        for (i, p) in points.iter().enumerate() {
            t.insert(p, i as ItemId).unwrap();
        }
        for q in random_points(10, 2, 21) {
            let (got, _) = t.knn(&q, 7).unwrap();
            let mut expect: Vec<(f64, ItemId)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (dist2(p, &q).sqrt(), i as ItemId))
                .collect();
            expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let got_ids: Vec<ItemId> = got.iter().map(|n| n.id).collect();
            let exp_ids: Vec<ItemId> = expect.iter().take(7).map(|&(_, id)| id).collect();
            assert_eq!(got_ids, exp_ids);
        }
    }

    #[test]
    fn knn_prunes_in_low_dimensions() {
        let points = random_points(2000, 2, 3);
        let mut t = QuadTree::new(2, 8, 1 << 24).unwrap();
        for (i, p) in points.iter().enumerate() {
            t.insert(p, i as ItemId).unwrap();
        }
        let (_, access) = t.knn(&[0.5, 0.5], 5).unwrap();
        assert!(access.distance_computations < 500, "no pruning: {access:?}");
    }

    #[test]
    fn duplicate_points_hit_max_depth_not_infinite_split() {
        let mut t = QuadTree::new(2, 2, 1 << 30).unwrap();
        for i in 0..50 {
            t.insert(&[0.3, 0.3], i).unwrap();
        }
        assert_eq!(t.len(), 50);
        let (res, _) = t.knn(&[0.3, 0.3], 5).unwrap();
        assert_eq!(res.len(), 5);
        assert!(res.iter().all(|n| n.distance == 0.0));
    }

    #[test]
    fn cell_growth_explodes_with_dimension() {
        // Same 64 points, same capacity: leaf cells allocated per
        // dimension — the §2.1 exponential-growth claim. Aggregated
        // over several seeds so the property is about the point-set
        // distribution, not one particular RNG stream.
        let cells: Vec<u128> = [2usize, 6, 10]
            .iter()
            .map(|&dim| {
                (1..=5u64)
                    .map(|seed| {
                        let mut t = QuadTree::new(dim, 2, u128::MAX).unwrap();
                        for (i, p) in random_points(64, dim, seed).iter().enumerate() {
                            t.insert(p, i as ItemId).unwrap();
                        }
                        t.leaf_cells()
                    })
                    .sum()
            })
            .collect();
        // Cells per split are 2^d, but high dimensions also need fewer
        // splits (one split already isolates most points), so compare
        // against the 2-D baseline rather than consecutively.
        assert!(cells[1] > 5 * cells[0], "{cells:?}");
        assert!(cells[2] > 10 * cells[0], "{cells:?}");
    }

    #[test]
    fn knn_on_empty_tree() {
        let t = QuadTree::new(3, 4, 100).unwrap();
        let (res, _) = t.knn(&[0.5, 0.5, 0.5], 3).unwrap();
        assert!(res.is_empty());
    }
}
