//! The Cholesky-embedded Euclidean distance kernel (§2.1).
//!
//! The quadratic-form color distance of eq. (1),
//! `d(x, y) = √((x−y)ᵀA(x−y))`, costs O(k²) per pair — the cost §2.1
//! is all about avoiding. Following the \[HSE+95\]-style preprocessing
//! idea, factor `A = L·Lᵀ` **once** (O(k³)) and embed every histogram
//! as `x′ = Lᵀx` (O(k²), once per object). Then for any pair
//!
//! ```text
//! d(x, y)² = (x−y)ᵀ L Lᵀ (x−y) = ‖x′ − y′‖²,
//! ```
//!
//! a plain squared Euclidean norm: O(k) per pair with a branch-free,
//! cache-friendly inner loop.
//!
//! The QBIC similarity matrix is only positive *semi*definite on the
//! full space (it is PD on the zero-sum subspace where differences of
//! normalized histograms live), so `A` itself has no Cholesky factor.
//! [`EmbeddedSpace`] instead factors the ridge-projected matrix
//! `M = P·A·P + J` of [`SymMatrix::project_zero_sum_with_ridge`]: for
//! any zero-sum `z`, `zᵀMz = zᵀAz` **exactly** (`Pz = z` and
//! `zᵀJz = (Σzᵢ)²/n = 0`), so the embedded distance equals the
//! quadratic-form distance up to float round-off — no approximation is
//! involved. If even `M` is numerically on the PSD boundary, a tiny
//! relative ridge `εI` is added (ε ≤ 1e-8·max diag), which perturbs
//! squared distances by at most `ε·‖z‖²`.
//!
//! [`EmbeddedCorpus`] carries the idea to whole databases: a flat
//! structure-of-arrays column store of pre-embedded coordinates with a
//! batched kNN scan that (1) first prunes via the §2.1 short-vector
//! bounding filter, then (2) **early-abandons** the running squared
//! sum against the current k-th best distance, and (3) optionally
//! fans the scan out over worker threads. The abandon invariant: the
//! running sum of squares is monotone non-decreasing, so once a
//! partial sum strictly exceeds the current k-th best *squared*
//! distance the object's final distance is strictly larger too and it
//! can never enter the top k — results are identical to the
//! brute-force scan, bit for bit.

use std::fmt;
use std::ops::Range;
use std::thread;

use fmdb_core::score::Score;
use fmdb_core::stats::GradeHistogram;

use crate::bounding::{BoundError, DistanceBound, ShortVector};
use crate::color::{ColorHistogram, ColorSpace};
use crate::distance::{DistanceError, HistogramDistance};
use crate::linalg::{Cholesky, LinalgError, SymMatrix};
use crate::scorer::DistanceScorer;

/// Relative ridge magnitudes tried (in order) when the projected
/// matrix is numerically on the PSD boundary.
const RIDGE_STEPS: [f64; 3] = [1e-12, 1e-10, 1e-8];

/// How many accumulated dimensions between early-abandon checks —
/// also the block size of the four-lane unrolled kernel
/// ([`squared_block`]), so both scans accumulate in the same order
/// and abandoned/completed evaluations agree bitwise with the plain
/// scan.
const ABANDON_STRIDE: usize = 16;

/// Error raised by the embedding kernel.
#[derive(Debug, Clone)]
pub enum EmbedError {
    /// The (projected, ridged) similarity matrix never became
    /// positive definite — no embedding exists.
    NotPositiveDefinite {
        /// The largest relative ridge that was tried.
        max_ridge: f64,
    },
    /// A histogram's bin count does not match the embedded space.
    DimensionMismatch {
        /// The space's dimension `k`.
        expected: usize,
        /// The offending dimension.
        got: usize,
    },
    /// Deriving the §2.1 bounding filter failed.
    Bound(BoundError),
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::NotPositiveDefinite { max_ridge } => write!(
                f,
                "similarity matrix is not PD on the zero-sum subspace (ridge up to {max_ridge:e})"
            ),
            EmbedError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            EmbedError::Bound(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EmbedError {}

impl From<BoundError> for EmbedError {
    fn from(e: BoundError) -> Self {
        EmbedError::Bound(e)
    }
}

/// One block's squared-distance contribution, manually unrolled four
/// lanes wide: independent lane accumulators break the loop-carried
/// add dependency so the FPU pipelines the multiply-adds, folded
/// deterministically as `(s0 + s1) + (s2 + s3)` with the scalar tail
/// accumulated after the fold. Every distance path — the plain scan,
/// the early-abandoning scan, and [`euclidean`] — sums through this
/// one helper, so all of them agree bitwise.
#[inline(always)]
fn squared_block(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0, 0.0, 0.0);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// The squared Euclidean distance between two embedded coordinate
/// slices. Accumulated block-by-block through [`squared_block`]'s
/// fixed four-lane order, so it is bitwise identical to a completed
/// [`EmbeddedCorpus::squared_distance_abandoning`] evaluation.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0;
    let mut ca = a.chunks(ABANDON_STRIDE);
    let mut cb = b.chunks(ABANDON_STRIDE);
    for (qc, cc) in ca.by_ref().zip(cb.by_ref()) {
        sum += squared_block(qc, cc);
    }
    sum
}

/// The Euclidean distance between two embedded coordinate slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// A one-time Cholesky embedding of a similarity matrix: the O(k³)
/// factorization is paid at construction, after which
/// [`EmbeddedSpace::embed`] maps any histogram into the space where
/// the quadratic-form distance is plain Euclidean.
#[derive(Debug, Clone)]
pub struct EmbeddedSpace {
    k: usize,
    factor: Cholesky,
    ridge: f64,
}

impl EmbeddedSpace {
    /// Builds the embedding for an arbitrary similarity matrix that is
    /// PD on the zero-sum subspace (ridge-projecting it first; see the
    /// module docs for why that preserves histogram distances
    /// exactly).
    pub fn for_matrix(a: &SymMatrix) -> Result<EmbeddedSpace, EmbedError> {
        let k = a.dim();
        let projected = a.project_zero_sum_with_ridge();
        let mut ridge = 0.0;
        let mut attempt = projected.cholesky();
        if attempt.is_err() {
            let diag_max = (0..k).map(|i| projected.get(i, i)).fold(1e-12, f64::max);
            for eps in RIDGE_STEPS {
                ridge = eps * diag_max;
                let jittered = projected
                    .add_scaled(&SymMatrix::identity(k), ridge)
                    // lint:allow(no-panic): the identity matrix is built with this projection’s own dimension k
                    .expect("identity has matching dimension");
                attempt = jittered.cholesky();
                if attempt.is_ok() {
                    break;
                }
            }
        }
        match attempt {
            Ok(factor) => Ok(EmbeddedSpace { k, factor, ridge }),
            Err(LinalgError::NotPositiveDefinite { .. }) => Err(EmbedError::NotPositiveDefinite {
                max_ridge: RIDGE_STEPS[RIDGE_STEPS.len() - 1],
            }),
            Err(_) => unreachable!("cholesky only fails with NotPositiveDefinite"),
        }
    }

    /// Builds the embedding for a color space's QBIC similarity
    /// matrix.
    pub fn for_space(space: &ColorSpace) -> Result<EmbeddedSpace, EmbedError> {
        EmbeddedSpace::for_matrix(&space.similarity_matrix())
    }

    /// The embedded dimension `k` (equal to the histogram bin count).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The ridge that was added to reach positive definiteness (0 for
    /// every well-conditioned QBIC matrix).
    pub fn ridge(&self) -> f64 {
        self.ridge
    }

    /// Embeds raw bin masses: `out = Lᵀ·bins`. O(k²).
    pub fn embed_into(&self, bins: &[f64], out: &mut [f64]) -> Result<(), EmbedError> {
        if bins.len() != self.k || out.len() != self.k {
            return Err(EmbedError::DimensionMismatch {
                expected: self.k,
                got: if bins.len() != self.k {
                    bins.len()
                } else {
                    out.len()
                },
            });
        }
        self.factor.transpose_mul_vec(bins, out);
        Ok(())
    }

    /// Embeds a histogram into the Euclidean space. O(k²).
    pub fn embed(&self, hist: &ColorHistogram) -> Result<Vec<f64>, EmbedError> {
        let mut out = vec![0.0; self.k];
        self.embed_into(hist.bins(), &mut out)?;
        Ok(out)
    }
}

/// [`HistogramDistance`] through the embedding: numerically equal to
/// [`crate::distance::QuadraticFormDistance`] on normalized
/// histograms (see the module docs for the zero-sum argument and the
/// property suite in `tests/embed_equivalence.rs`).
///
/// Each call embeds both histograms (O(k²)), so this adapter is for
/// drop-in trait compatibility; the O(k) fast path needs pre-embedded
/// coordinates — use [`EmbeddedSpace::embed`] once per object and
/// [`euclidean`] per pair, or an [`EmbeddedCorpus`].
#[derive(Debug, Clone)]
pub struct EmbeddedDistance {
    space: EmbeddedSpace,
}

impl EmbeddedDistance {
    /// Wraps an embedded space.
    pub fn new(space: EmbeddedSpace) -> EmbeddedDistance {
        EmbeddedDistance { space }
    }

    /// The underlying embedding.
    pub fn space(&self) -> &EmbeddedSpace {
        &self.space
    }
}

impl HistogramDistance for EmbeddedDistance {
    fn distance(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError> {
        let check = |h: &ColorHistogram| -> Result<(), DistanceError> {
            if h.k() != self.space.k() {
                return Err(DistanceError::DimensionMismatch {
                    expected: self.space.k(),
                    got: h.k(),
                });
            }
            Ok(())
        };
        check(x)?;
        check(y)?;
        // lint:allow(no-panic): check(x) at function entry validated the dimension
        let ex = self.space.embed(x).expect("dimensions checked above");
        // lint:allow(no-panic): check(y) at function entry validated the dimension
        let ey = self.space.embed(y).expect("dimensions checked above");
        Ok(euclidean(&ex, &ey))
    }

    fn name(&self) -> String {
        format!("embedded(k={})", self.space.k())
    }
}

/// Cost counters for one [`EmbeddedCorpus`] kNN scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Objects skipped by the §2.1 short-vector bounding filter
    /// without touching their embedded coordinates.
    pub filter_pruned: u64,
    /// Objects whose distance evaluation was cut short by the running
    /// sum exceeding the k-th best.
    pub abandoned: u64,
    /// Objects whose O(k) distance ran to completion.
    pub completed: u64,
}

impl ScanStats {
    /// Fraction of objects that never paid the full O(k) loop.
    pub fn savings(&self) -> f64 {
        let total = self.filter_pruned + self.abandoned + self.completed;
        if total == 0 {
            0.0
        } else {
            1.0 - self.completed as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for ScanStats {
    fn add_assign(&mut self, rhs: ScanStats) {
        self.filter_pruned += rhs.filter_pruned;
        self.abandoned += rhs.abandoned;
        self.completed += rhs.completed;
    }
}

/// A flat column store of pre-embedded histogram coordinates
/// (structure of arrays: one contiguous `n×k` coordinate block, one
/// `n×3` short-vector block), with batched early-abandoning kNN.
#[derive(Debug, Clone)]
pub struct EmbeddedCorpus {
    space: EmbeddedSpace,
    n: usize,
    k: usize,
    /// Object-major embedded coordinates (`n·k` entries; object `i`
    /// owns `coords[i·k .. (i+1)·k]`).
    coords: Vec<f64>,
    /// The §2.1 first-stage filter, when derivable: the bound plus a
    /// flat `n·3` block of short vectors.
    filter: Option<CorpusFilter>,
}

#[derive(Debug, Clone)]
struct CorpusFilter {
    bound: DistanceBound,
    /// Flat `n·3` scaled short-vector coordinates.
    shorts: Vec<f64>,
}

impl EmbeddedCorpus {
    /// Embeds every histogram into `space` (O(n·k²) once). No bounding
    /// filter — every scan pays at least the abandon loop per object.
    pub fn build(
        space: EmbeddedSpace,
        hists: &[ColorHistogram],
    ) -> Result<EmbeddedCorpus, EmbedError> {
        let k = space.k();
        let mut coords = vec![0.0; hists.len() * k];
        for (h, chunk) in hists.iter().zip(coords.chunks_mut(k)) {
            space.embed_into(h.bins(), chunk)?;
        }
        Ok(EmbeddedCorpus {
            space,
            n: hists.len(),
            k,
            coords,
            filter: None,
        })
    }

    /// Builds the corpus for a color space **with** the §2.1
    /// short-vector bounding filter as the scan's first stage.
    pub fn build_filtered(
        color_space: &ColorSpace,
        hists: &[ColorHistogram],
    ) -> Result<EmbeddedCorpus, EmbedError> {
        let space = EmbeddedSpace::for_space(color_space)?;
        let mut corpus = EmbeddedCorpus::build(space, hists)?;
        let bound = DistanceBound::for_space(color_space)?;
        let mut shorts = vec![0.0; hists.len() * 3];
        for (h, chunk) in hists.iter().zip(shorts.chunks_mut(3)) {
            let s = bound.project(h)?;
            chunk.copy_from_slice(&s.coords);
        }
        corpus.filter = Some(CorpusFilter { bound, shorts });
        Ok(corpus)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the corpus holds no objects.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The embedded dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The embedding shared by all stored objects.
    pub fn space(&self) -> &EmbeddedSpace {
        &self.space
    }

    /// Whether the §2.1 bounding filter is active as the scan's first
    /// stage.
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// The embedded coordinates of object `i`.
    pub fn embedded(&self, i: usize) -> &[f64] {
        // lint:allow(unchecked-arith): i < n and n·k == coords.len(),
        // so both products stay within the existing allocation's
        // length; the slice op bounds-checks the result regardless.
        &self.coords[i * self.k..(i + 1) * self.k]
    }

    /// The exact quadratic-form distance between stored objects `i`
    /// and `j` — O(k) instead of O(k²).
    pub fn distance_between(&self, i: usize, j: usize) -> f64 {
        euclidean(self.embedded(i), self.embedded(j))
    }

    /// Early-abandoning squared distance from an embedded query `q`
    /// (see [`EmbeddedSpace::embed`]) to stored object `i`: `None` as
    /// soon as the running sum strictly exceeds `threshold_sq`, else
    /// the exact squared distance.
    ///
    /// The sum is accumulated block-by-block in [`squared_block`]'s
    /// fixed four-lane order — the same order [`squared_euclidean`]
    /// uses — so a completed evaluation is bitwise identical to the
    /// plain scan. The abandon check runs once per
    /// [`ABANDON_STRIDE`]-dimension block, not per lane, keeping the
    /// unrolled lanes free of branches;
    /// `threshold_sq = f64::INFINITY` never abandons.
    pub fn squared_distance_abandoning(
        &self,
        q: &[f64],
        i: usize,
        threshold_sq: f64,
    ) -> Option<f64> {
        debug_assert_eq!(q.len(), self.k);
        let coords = self.embedded(i);
        let mut sum = 0.0;
        let mut offset = 0;
        for (qc, cc) in q.chunks(ABANDON_STRIDE).zip(coords.chunks(ABANDON_STRIDE)) {
            sum += squared_block(qc, cc);
            offset += qc.len();
            if sum > threshold_sq && offset < self.k {
                return None;
            }
        }
        Some(sum)
    }

    /// The exact distance from `query` to every stored object: one
    /// O(k²) embedding, then n O(k) norms.
    pub fn distances(&self, query: &ColorHistogram) -> Result<Vec<f64>, EmbedError> {
        let q = self.embed_query(query)?;
        Ok((0..self.n)
            .map(|i| euclidean(&q, self.embedded(i)))
            .collect())
    }

    /// Every stored object's `(oid, grade)` pair for retrieval around
    /// `query` — oid is the corpus index, grade the exact distance
    /// mapped through `scorer`. This is the one-shot export feeding a
    /// persistent graded store (the media layer cannot see the
    /// middleware's store types, so it hands over plain pairs and the
    /// caller — bench, garlic — does the persisting).
    pub fn graded_pairs(
        &self,
        query: &ColorHistogram,
        scorer: &dyn DistanceScorer,
    ) -> Result<Vec<(u64, Score)>, EmbedError> {
        let distances = self.distances(query)?;
        Ok(distances
            .into_iter()
            .enumerate()
            .map(|(i, d)| (i as u64, scorer.score(d)))
            .collect())
    }

    fn embed_query(&self, query: &ColorHistogram) -> Result<Vec<f64>, EmbedError> {
        self.space.embed(query)
    }

    /// An equi-depth grade histogram for query-by-`query` retrieval,
    /// estimated from a deterministic stride sample of the corpus —
    /// the planner's statistics hook for media sources with no
    /// materialized sorted list.
    ///
    /// Up to `sample` objects are probed (one O(k) norm each — a tiny
    /// fraction of a full scan for `sample ≪ n`), their distances
    /// mapped through `scorer`, and the resulting grades summarized by
    /// [`GradeHistogram::from_sample`] scaled to the full corpus size.
    /// The stride sample is deterministic, so repeated calls agree.
    pub fn grade_histogram(
        &self,
        query: &ColorHistogram,
        scorer: &dyn DistanceScorer,
        bins: usize,
        sample: usize,
    ) -> Result<GradeHistogram, EmbedError> {
        let q = self.embed_query(query)?;
        let take = sample.max(1).min(self.n);
        let stride = self.n.checked_div(take).unwrap_or(1).max(1);
        let grades: Vec<Score> = (0..self.n)
            .step_by(stride)
            .take(take)
            .map(|i| scorer.score(euclidean(&q, self.embedded(i))))
            .collect();
        Ok(GradeHistogram::from_sample(&grades, self.n, bins))
    }

    /// The `k_nearest` objects closest to `query` under the exact
    /// quadratic-form distance, by early-abandoning scan (plus the
    /// bounding-filter first stage when built with
    /// [`EmbeddedCorpus::build_filtered`]).
    ///
    /// Returns `(index, distance)` pairs in ascending
    /// `(distance, index)` order — identical to the brute-force
    /// [`EmbeddedCorpus::knn_brute`] oracle.
    pub fn knn(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let (heap, stats) = self.scan_range(&q, q_short.as_ref(), 0..self.n, k_nearest, true);
        Ok((finalize(heap), stats))
    }

    /// The brute-force oracle: every distance run to completion, no
    /// filter, no abandoning. Same ordering contract as
    /// [`EmbeddedCorpus::knn`].
    pub fn knn_brute(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let (heap, stats) = self.scan_range(&q, None, 0..self.n, k_nearest, false);
        Ok((finalize(heap), stats))
    }

    /// [`EmbeddedCorpus::knn`] fanned out over `threads` worker
    /// threads scanning contiguous chunks (the engine's
    /// scoped-thread/worker idiom). Each worker early-abandons against
    /// its own running k-th best; the merged result is identical to
    /// the serial scan.
    pub fn knn_parallel(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
        threads: usize,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let threads = threads.max(1).min(self.n.max(1));
        if threads == 1 {
            return self.knn(query, k_nearest);
        }
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let chunk = self.n.div_ceil(threads);
        let results: Vec<(Vec<(f64, usize)>, ScanStats)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let q = &q;
                    let q_short = q_short.as_ref();
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(self.n);
                    scope.spawn(move || self.scan_range(q, q_short, lo..hi, k_nearest, true))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut stats = ScanStats::default();
        let mut merged: Vec<(f64, usize)> = Vec::with_capacity(threads.saturating_mul(k_nearest));
        for (local, local_stats) in results {
            stats += local_stats;
            merged.extend(local);
        }
        sort_candidates(&mut merged);
        merged.truncate(k_nearest);
        Ok((finalize(merged), stats))
    }

    /// Splits the object indices into `shards` contiguous ranges using
    /// the same decomposition as the middleware's contiguous source
    /// partitioner: shard `s` owns `[⌈s·n/p⌉, ⌈(s+1)·n/p⌉)`, so object
    /// `i` lands in shard `min(p−1, ⌊i·p/n⌋)`. Ranges tile `0..n`
    /// exactly; sizes differ by at most one. With `shards = 0` a
    /// single full-corpus range is returned.
    pub fn shard_ranges(&self, shards: usize) -> Vec<Range<usize>> {
        contiguous_ranges(self.n, shards)
    }

    /// [`EmbeddedCorpus::knn`] restricted to objects whose index lies
    /// in `range` (clamped to the corpus) — the per-shard kernel for
    /// partitioned execution. Merging each shard's answers by
    /// ascending `(distance, index)` and truncating to `k_nearest`
    /// reproduces the full-corpus [`EmbeddedCorpus::knn`] exactly:
    /// every global winner is a winner of its own shard.
    pub fn knn_in_range(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
        range: Range<usize>,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let lo = range.start.min(self.n);
        let hi = range.end.min(self.n).max(lo);
        let (heap, stats) = self.scan_range(&q, q_short.as_ref(), lo..hi, k_nearest, true);
        Ok((finalize(heap), stats))
    }

    fn query_short(&self, query: &ColorHistogram) -> Result<Option<ShortVector>, EmbedError> {
        match &self.filter {
            Some(f) => Ok(Some(f.bound.project(query)?)),
            None => Ok(None),
        }
    }

    /// Scans `range`, returning up to `k_nearest` best
    /// `(squared_distance, index)` candidates in ascending
    /// `(distance, index)` order plus the cost counters.
    ///
    /// Early-abandon invariant: the running sum of squares only grows,
    /// so `partial > kth_sq` implies the final squared distance
    /// strictly exceeds the current k-th best and the object can be
    /// dropped without changing the result. Pruning and abandoning
    /// only ever engage once `k_nearest` candidates are held.
    fn scan_range(
        &self,
        q: &[f64],
        q_short: Option<&ShortVector>,
        range: Range<usize>,
        k_nearest: usize,
        abandon: bool,
    ) -> (Vec<(f64, usize)>, ScanStats) {
        let mut stats = ScanStats::default();
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k_nearest.saturating_add(1));
        if k_nearest == 0 {
            return (best, stats);
        }
        let shorts = self.filter.as_ref().map(|f| f.shorts.as_slice());
        for i in range {
            let full = best.len() == k_nearest;
            // `best` is kept sorted and truncated to `k_nearest`, so
            // when full its last element is the current k-th best.
            let (kth_sq, kth_tie) = match best.last() {
                Some(&(d, tie)) if full => (d, tie),
                _ => (f64::INFINITY, usize::MAX),
            };
            // Stage 1: the §2.1 bounding filter. d ≥ d̂, so
            // d̂² > kth_sq ⇒ d² > kth_sq and the object cannot improve
            // the answer.
            if full {
                if let (Some(q_s), Some(shorts)) = (q_short, shorts) {
                    let s = &shorts[i * 3..i * 3 + 3];
                    let lb_sq = (q_s.coords[0] - s[0]).powi(2)
                        + (q_s.coords[1] - s[1]).powi(2)
                        + (q_s.coords[2] - s[2]).powi(2);
                    if lb_sq > kth_sq {
                        stats.filter_pruned += 1;
                        continue;
                    }
                }
            }
            // Stage 2: running-sum early abandoning.
            let threshold_sq = if abandon && full {
                kth_sq
            } else {
                f64::INFINITY
            };
            let sum = match self.squared_distance_abandoning(q, i, threshold_sq) {
                Some(sum) => sum,
                None => {
                    stats.abandoned += 1;
                    continue;
                }
            };
            stats.completed += 1;
            if !full || (sum, i) < (kth_sq, kth_tie) {
                best.push((sum, i));
                sort_candidates(&mut best);
                best.truncate(k_nearest);
            }
        }
        (best, stats)
    }
}

/// The contiguous shard decomposition shared with the middleware's
/// contiguous source partitioner: shard `s` of `p` owns
/// `[⌈s·n/p⌉, ⌈(s+1)·n/p⌉)`. The ranges tile `0..n` exactly and their
/// sizes differ by at most one; `shards = 0` is treated as 1.
pub fn contiguous_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let p = shards.max(1);
    (0..p)
        .map(|s| {
            let lo = (s * n).div_ceil(p);
            let hi = ((s + 1) * n).div_ceil(p);
            lo..hi
        })
        .collect()
}

/// Ascending `(squared_distance, index)` with the index tie-break —
/// the same total order the brute-force oracle sorts by.
fn sort_candidates(v: &mut [(f64, usize)]) {
    v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

/// Converts `(squared_distance, index)` candidates into the public
/// `(index, distance)` answer shape.
fn finalize(best: Vec<(f64, usize)>) -> Vec<(usize, f64)> {
    best.into_iter().map(|(d2, i)| (i, d2.sqrt())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;
    use crate::distance::QuadraticFormDistance;

    fn space() -> ColorSpace {
        ColorSpace::rgb_grid(3).unwrap()
    }

    fn sample_histograms(space: &ColorSpace, count: usize, seed: u64) -> Vec<ColorHistogram> {
        let k = space.k();
        (0..count as u64)
            .map(|s| {
                let masses: Vec<f64> = (0..k)
                    .map(|i| {
                        let h =
                            (i as u64 + 1).wrapping_mul((s + seed).wrapping_mul(2654435761) + 97);
                        ((h % 1000) as f64 / 1000.0).powi(2) + 1e-6
                    })
                    .collect();
                ColorHistogram::from_masses(masses).unwrap()
            })
            .collect()
    }

    #[test]
    fn embedded_distance_equals_quadratic_form() {
        let sp = space();
        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        let emb = EmbeddedDistance::new(EmbeddedSpace::for_space(&sp).unwrap());
        assert_eq!(emb.space().ridge(), 0.0, "QBIC matrix needs no ridge");
        let hists = sample_histograms(&sp, 12, 5);
        for x in &hists {
            for y in &hists {
                let a = qf.distance(x, y).unwrap();
                let b = emb.distance(x, y).unwrap();
                assert!((a - b).abs() < 1e-9, "qf {a} vs embedded {b}");
            }
        }
    }

    #[test]
    fn embedded_distance_checks_dimensions() {
        let emb = EmbeddedDistance::new(EmbeddedSpace::for_space(&space()).unwrap());
        let other = ColorHistogram::pure(&ColorSpace::rgb_grid(2).unwrap(), Rgb::RED);
        let ok = ColorHistogram::pure(&space(), Rgb::RED);
        assert!(matches!(
            emb.distance(&ok, &other),
            Err(DistanceError::DimensionMismatch { .. })
        ));
        assert!(emb.name().contains("embedded"));
    }

    #[test]
    fn unrolled_kernel_matches_scalar_reference() {
        // Awkward lengths exercise every tail path of the four-lane
        // unroll: empty, sub-lane, lane-aligned, block-aligned, and
        // block+lane+tail combinations.
        for len in [0usize, 1, 3, 4, 5, 7, 15, 16, 17, 20, 31, 33, 64] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.73).cos()).collect();
            let scalar: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let unrolled = squared_euclidean(&a, &b);
            assert!(
                (scalar - unrolled).abs() <= 1e-12 * scalar.max(1.0),
                "len {len}: scalar {scalar} vs unrolled {unrolled}"
            );
            // The block helper alone agrees with the full function on
            // sub-block inputs (the abandoning scan relies on this).
            if len <= ABANDON_STRIDE {
                assert_eq!(unrolled.to_bits(), squared_block(&a, &b).to_bits());
            }
        }
    }

    #[test]
    fn abandoning_scan_is_bitwise_identical_to_plain_scan() {
        let sp = space();
        let hists = sample_histograms(&sp, 40, 13);
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &hists).unwrap();
        let q = corpus.embedded(0).to_vec();
        for i in 0..corpus.len() {
            let plain = squared_euclidean(&q, corpus.embedded(i));
            let full = corpus
                .squared_distance_abandoning(&q, i, f64::INFINITY)
                .expect("infinity never abandons");
            assert_eq!(plain.to_bits(), full.to_bits(), "object {i}");
        }
    }

    #[test]
    fn corpus_knn_matches_brute_force_and_counts_work_saved() {
        let sp = space();
        let hists = sample_histograms(&sp, 200, 3);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        assert!(corpus.has_filter());
        let queries = sample_histograms(&sp, 6, 99);
        for q in &queries {
            let (brute, bstats) = corpus.knn_brute(q, 7).unwrap();
            let (fast, fstats) = corpus.knn(q, 7).unwrap();
            assert_eq!(brute, fast, "early abandoning changed the answer");
            assert_eq!(bstats.completed, 200);
            assert_eq!(
                fstats.filter_pruned + fstats.abandoned + fstats.completed,
                200
            );
            assert!(
                fstats.filter_pruned + fstats.abandoned > 0,
                "no work was saved: {fstats:?}"
            );
            assert!(fstats.savings() > 0.0);
        }
    }

    #[test]
    fn parallel_knn_matches_serial() {
        let sp = space();
        let hists = sample_histograms(&sp, 157, 8);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        let q = &sample_histograms(&sp, 1, 41)[0];
        let (serial, _) = corpus.knn(q, 9).unwrap();
        for threads in [2, 3, 8, 64] {
            let (par, stats) = corpus.knn_parallel(q, 9, threads).unwrap();
            assert_eq!(serial, par, "threads={threads}");
            assert_eq!(stats.filter_pruned + stats.abandoned + stats.completed, 157);
        }
    }

    #[test]
    fn corpus_distances_match_pairwise_quadratic_form() {
        let sp = space();
        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        let hists = sample_histograms(&sp, 20, 17);
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &hists).unwrap();
        let ds = corpus.distances(&hists[4]).unwrap();
        for (i, h) in hists.iter().enumerate() {
            let want = qf.distance(&hists[4], h).unwrap();
            assert!((ds[i] - want).abs() < 1e-9);
            let between = corpus.distance_between(4, i);
            assert!((between - want).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_edge_cases() {
        let sp = space();
        let hists = sample_histograms(&sp, 5, 2);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        let q = &hists[0];
        assert!(corpus.knn(q, 0).unwrap().0.is_empty());
        assert_eq!(corpus.knn(q, 50).unwrap().0.len(), 5);
        assert_eq!(corpus.knn_parallel(q, 50, 16).unwrap().0.len(), 5);
        // The query is object 0: it must rank itself first at ~0.
        let (res, _) = corpus.knn(q, 1).unwrap();
        assert_eq!(res[0].0, 0);
        assert!(res[0].1 < 1e-9);
        // Empty corpus.
        let empty = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &[]).unwrap();
        assert!(empty.is_empty());
        assert!(empty.knn(q, 3).unwrap().0.is_empty());
    }

    #[test]
    fn contiguous_ranges_tile_and_agree_with_the_floor_formula() {
        for n in [0usize, 1, 2, 5, 7, 16, 33, 157] {
            for p in [1usize, 2, 3, 4, 5, 8] {
                let ranges = contiguous_ranges(n, p);
                assert_eq!(ranges.len(), p);
                // Tiling: concatenation covers 0..n with no gaps.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} p={p}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} p={p}");
                // Balance and inverse: the owner of i is min(p−1, ⌊i·p/n⌋).
                for (s, r) in ranges.iter().enumerate() {
                    assert!(r.len() <= n.div_ceil(p), "n={n} p={p}");
                    for i in r.clone() {
                        assert_eq!((i * p / n).min(p - 1), s, "n={n} p={p} i={i}");
                    }
                }
            }
        }
        assert_eq!(contiguous_ranges(10, 0), vec![0..10]);
    }

    #[test]
    fn sharded_knn_merge_equals_full_scan() {
        let sp = space();
        let hists = sample_histograms(&sp, 143, 13);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        let q = &sample_histograms(&sp, 1, 77)[0];
        let (want, _) = corpus.knn(q, 9).unwrap();
        for shards in [1usize, 2, 3, 8] {
            let mut merged: Vec<(usize, f64)> = Vec::new();
            let mut scanned = 0;
            for r in corpus.shard_ranges(shards) {
                scanned += r.len();
                let (local, _) = corpus.knn_in_range(q, 9, r).unwrap();
                merged.extend(local);
            }
            assert_eq!(scanned, corpus.len(), "shards={shards}");
            merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            merged.truncate(9);
            assert_eq!(merged, want, "shards={shards}");
        }
        // Out-of-corpus ranges clamp instead of panicking.
        assert!(corpus
            .knn_in_range(q, 3, 1_000..2_000)
            .unwrap()
            .0
            .is_empty());
    }

    #[test]
    fn sampled_grade_histogram_tracks_the_full_distribution() {
        use crate::scorer::{DistanceScorer, ExpDecay};

        let sp = space();
        let hists = sample_histograms(&sp, 240, 19);
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &hists).unwrap();
        let q = &sample_histograms(&sp, 1, 55)[0];
        let scorer = ExpDecay::new(0.5).unwrap();

        let full = corpus.grade_histogram(q, &scorer, 16, 240).unwrap();
        let sampled = corpus.grade_histogram(q, &scorer, 16, 48).unwrap();
        assert_eq!(full.universe(), 240);
        assert_eq!(sampled.universe(), 240, "sample scales to the corpus");
        // The sampled selectivity curve tracks the exhaustive one.
        let truth: Vec<f64> = corpus
            .distances(q)
            .unwrap()
            .iter()
            .map(|&d| scorer.score(d).value())
            .collect();
        for g in [0.2, 0.5, 0.8] {
            let exact = truth.iter().filter(|&&t| t >= g).count() as f64 / 240.0;
            assert!(
                (full.fraction_above(g) - exact).abs() < 0.1,
                "full histogram off at {g}: {} vs {exact}",
                full.fraction_above(g)
            );
            assert!(
                (sampled.fraction_above(g) - exact).abs() < 0.2,
                "sampled histogram off at {g}: {} vs {exact}",
                sampled.fraction_above(g)
            );
        }
        // Determinism: the stride sample has no hidden state.
        let again = corpus.grade_histogram(q, &scorer, 16, 48).unwrap();
        assert_eq!(sampled, again);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let sp = space();
        let corpus = EmbeddedCorpus::build_filtered(&sp, &sample_histograms(&sp, 4, 1)).unwrap();
        let wrong = ColorHistogram::pure(&ColorSpace::rgb_grid(2).unwrap(), Rgb::RED);
        assert!(matches!(
            corpus.knn(&wrong, 2),
            Err(EmbedError::DimensionMismatch { .. })
        ));
        let es = EmbeddedSpace::for_space(&sp).unwrap();
        let mut out = vec![0.0; 3];
        assert!(matches!(
            es.embed_into(&[0.5; 27], &mut out),
            Err(EmbedError::DimensionMismatch { got: 3, .. })
        ));
    }

    #[test]
    fn synthetic_line_matrix_embeds_too() {
        // a_ij = 1 − |i−j|/(k−1) is conditionally PD on the zero-sum
        // subspace (1-D Euclidean distance matrix) — the shape the
        // distance bench sweeps at arbitrary k.
        let k = 16;
        let a = SymMatrix::from_fn(k, |i, j| {
            1.0 - (i as f64 - j as f64).abs() / (k as f64 - 1.0)
        })
        .unwrap();
        let es = EmbeddedSpace::for_matrix(&a).unwrap();
        let qf = QuadraticFormDistance::new(a);
        let x = ColorHistogram::from_masses((1..=k).map(|i| i as f64).collect()).unwrap();
        let y = ColorHistogram::from_masses((1..=k).rev().map(|i| i as f64).collect()).unwrap();
        let emb = EmbeddedDistance::new(es);
        let a_d = qf.distance(&x, &y).unwrap();
        let b_d = emb.distance(&x, &y).unwrap();
        assert!((a_d - b_d).abs() < 1e-9, "{a_d} vs {b_d}");
    }
}
