//! E2 — the disjunction special case (§4.1): under max there is an
//! algorithm with database access cost `m·k`, *independent of N*.

use std::sync::Arc;

use fmdb_core::scoring::conorms::Max;
use fmdb_core::scoring::ConormScoring;
use fmdb_middleware::algorithms::max_merge::MaxMerge;
use fmdb_middleware::algorithms::naive::Naive;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{int, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E2",
        "disjunction under max: m·k cost, independent of N",
        "§4.1: \"there is a simple algorithm whose database access cost is only mk, independent of the size N of the database!\"",
    );
    let ns: Vec<usize> = if cfg.quick {
        vec![1 << 10, 1 << 13]
    } else {
        vec![1 << 10, 1 << 13, 1 << 16, 1 << 18]
    };
    let scoring: SharedScoring = Arc::new(ConormScoring(Max));
    let mut t = Table::new(
        "max-merge vs naive on A1 ∨ … ∨ Am",
        &["m", "k", "N", "merge cost", "m·k", "naive cost"],
    );
    for &m in &[2usize, 3, 5] {
        for &k in &[5usize, 20] {
            for &n in &ns {
                let merge = mean_cost(&MaxMerge, &scoring, k, cfg.seeds, |seed| {
                    independent_uniform(n, m, seed)
                });
                let naive = mean_cost(&Naive, &scoring, k, cfg.seeds, |seed| {
                    independent_uniform(n, m, seed)
                });
                t.row(vec![
                    m.to_string(),
                    k.to_string(),
                    n.to_string(),
                    int(merge.database_access_cost()),
                    int((m * k) as u64),
                    int(naive.database_access_cost()),
                ]);
            }
        }
    }
    report.table(t);
    report.note(
        "merge cost equals m·k exactly in every row, flat across three orders of magnitude of N.",
    );
    report
}
