//! Grades ("scores") in the unit interval.
//!
//! The paper (§3) assigns every object a *grade* in `[0, 1]` under each
//! atomic query: `1` is a perfect match, `0` is no match at all, and a
//! traditional (crisp) predicate only ever produces `0` or `1`.
//!
//! [`Score`] is a newtype over `f64` that statically rules out NaN and
//! out-of-range values, which in turn lets it implement [`Ord`] (grades
//! must be sortable: sorted access streams objects by descending grade).

use std::cmp::Ordering;
use std::fmt;

use crate::float;

/// Error returned when constructing a [`Score`] from an invalid `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreError {
    /// The value was NaN.
    NotANumber,
    /// The value was outside `[0, 1]`; the payload is the offending value.
    OutOfRange(f64),
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::NotANumber => write!(f, "score must not be NaN"),
            ScoreError::OutOfRange(v) => write!(f, "score {v} is outside [0, 1]"),
        }
    }
}

impl std::error::Error for ScoreError {}

/// A grade in the closed unit interval `[0, 1]`.
///
/// Invariants: the wrapped value is a finite `f64` with `0.0 <= v <= 1.0`.
/// Because of this, `Score` is totally ordered and implements [`Eq`] and
/// [`Ord`] (unlike raw `f64`).
///
/// ```
/// use fmdb_core::score::Score;
/// let a = Score::new(0.3).unwrap();
/// let b = Score::new(0.7).unwrap();
/// assert!(a < b);
/// assert_eq!(a.max(b), b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score(f64);

impl Score {
    /// The minimal grade: the query is (completely) false about the object.
    pub const ZERO: Score = Score(0.0);
    /// The maximal grade: a perfect match.
    pub const ONE: Score = Score(1.0);
    /// The midpoint grade, ½.
    pub const HALF: Score = Score(0.5);

    /// Creates a score, rejecting NaN and values outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Score, ScoreError> {
        if value.is_nan() {
            Err(ScoreError::NotANumber)
        } else if !(0.0..=1.0).contains(&value) {
            Err(ScoreError::OutOfRange(value))
        } else {
            Ok(Score(value).debug_checked())
        }
    }

    /// Creates a score by clamping `value` into `[0, 1]`. NaN becomes `0`.
    ///
    /// This is the right constructor when converting a *distance* into a
    /// grade, where floating-point round-off may land epsilon outside the
    /// interval.
    #[inline]
    pub fn clamped(value: f64) -> Score {
        if value.is_nan() {
            Score::ZERO
        } else {
            Score(value.clamp(0.0, 1.0)).debug_checked()
        }
    }

    /// The runtime half of the workspace's invariant story: every
    /// non-const construction path funnels through this check, so a
    /// grade that escapes `[0, 1]` (or goes NaN) panics immediately in
    /// debug/test builds instead of corrupting a top-k answer three
    /// layers later. Release builds compile it away. What this traps
    /// dynamically, `cargo xtask lint` complements statically (rules
    /// `no-panic`, `no-float-eq`).
    #[inline]
    fn debug_checked(self) -> Score {
        debug_assert!(
            self.0.is_finite() && (0.0..=1.0).contains(&self.0),
            "Score invariant violated: {} is not a grade in [0, 1]",
            self.0
        );
        self
    }

    /// Creates a crisp score from a Boolean: `true` ↦ 1, `false` ↦ 0.
    ///
    /// Traditional database predicates (e.g. `Artist='Beatles'`) grade
    /// every object with exactly 0 or 1 (§3 of the paper).
    #[inline]
    pub fn crisp(truth: bool) -> Score {
        if truth {
            Score::ONE
        } else {
            Score::ZERO
        }
    }

    /// The raw grade value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether this grade is crisp: within [`float::EPSILON`] of 0
    /// or 1.
    ///
    /// Crisp grades are produced by traditional predicates (§3), but a
    /// crisp grade that travelled through a scoring function may pick
    /// up round-off, so the test is tolerant rather than exact (see
    /// [`crate::float`]).
    #[inline]
    pub fn is_crisp(self) -> bool {
        float::approx_zero(self.0) || float::approx_one(self.0)
    }

    /// Standard fuzzy negation `1 − x` (the paper's negation rule, §3).
    #[inline]
    #[must_use]
    pub fn negate(self) -> Score {
        Score(1.0 - self.0).debug_checked()
    }

    /// The smaller of two grades (Zadeh conjunction).
    #[inline]
    #[must_use]
    pub fn min(self, other: Score) -> Score {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two grades (Zadeh disjunction).
    #[inline]
    #[must_use]
    pub fn max(self, other: Score) -> Score {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// True if `self` is within `eps` of `other` (for tests on float
    /// paths). For the workspace's standard tolerance use
    /// [`float::approx_eq`] / [`float::EPSILON`].
    #[inline]
    pub fn approx_eq(self, other: Score, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Scores are finite and in [0, 1] by construction, where IEEE
        // total order coincides with the numeric order — so this is
        // total without any panicking fallback.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<bool> for Score {
    fn from(truth: bool) -> Score {
        Score::crisp(truth)
    }
}

impl TryFrom<f64> for Score {
    type Error = ScoreError;
    fn try_from(value: f64) -> Result<Score, ScoreError> {
        Score::new(value)
    }
}

/// An object paired with its grade under some query.
///
/// This is the unit of communication with a subsystem: sorted access
/// yields `ScoredObject`s in descending grade order (§4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoredObject<Id> {
    /// The object's identity in the repository being queried.
    pub id: Id,
    /// The object's grade under the (sub)query.
    pub grade: Score,
}

impl<Id> ScoredObject<Id> {
    /// Pairs an object id with a grade.
    pub fn new(id: Id, grade: Score) -> Self {
        ScoredObject { id, grade }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_unit_interval() {
        assert_eq!(Score::new(0.0).unwrap(), Score::ZERO);
        assert_eq!(Score::new(1.0).unwrap(), Score::ONE);
        assert_eq!(Score::new(0.5).unwrap(), Score::HALF);
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert_eq!(Score::new(-0.01), Err(ScoreError::OutOfRange(-0.01)));
        assert_eq!(Score::new(1.01), Err(ScoreError::OutOfRange(1.01)));
    }

    #[test]
    fn new_rejects_nan() {
        assert_eq!(Score::new(f64::NAN), Err(ScoreError::NotANumber));
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Score::clamped(-3.0), Score::ZERO);
        assert_eq!(Score::clamped(42.0), Score::ONE);
        assert_eq!(Score::clamped(0.25).value(), 0.25);
        assert_eq!(Score::clamped(f64::NAN), Score::ZERO);
    }

    #[test]
    fn crisp_maps_booleans() {
        assert_eq!(Score::crisp(true), Score::ONE);
        assert_eq!(Score::crisp(false), Score::ZERO);
        assert!(Score::crisp(true).is_crisp());
        assert!(!Score::HALF.is_crisp());
    }

    #[test]
    fn negation_is_involutive() {
        let s = Score::new(0.3).unwrap();
        assert!(s.negate().negate().approx_eq(s, 1e-15));
        assert_eq!(Score::ZERO.negate(), Score::ONE);
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        let mut v = [
            Score::new(0.9).unwrap(),
            Score::ZERO,
            Score::HALF,
            Score::ONE,
        ];
        v.sort();
        let vals: Vec<f64> = v.iter().map(|s| s.value()).collect();
        assert_eq!(vals, vec![0.0, 0.5, 0.9, 1.0]);
    }

    #[test]
    fn min_max_agree_with_ordering() {
        let a = Score::new(0.2).unwrap();
        let b = Score::new(0.8).unwrap();
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(a), a);
    }

    #[test]
    fn display_is_fixed_precision() {
        assert_eq!(Score::HALF.to_string(), "0.5000");
    }

    #[test]
    fn error_display() {
        assert_eq!(ScoreError::NotANumber.to_string(), "score must not be NaN");
        assert!(ScoreError::OutOfRange(2.0).to_string().contains("2"));
    }
}
