//! Property suite: the unified planner's regret is bounded (DESIGN.md
//! §11).
//!
//! On random independent-uniform instances with full statistics, the
//! plan [`choose_plan`] picks — once actually *executed* — charges at
//! most 2× the cheapest executed candidate strategy under the same
//! cost model. The comparison set is exactly the planner's own priced
//! candidate list (the engine-level, NRA-inclusive zoo), each run over
//! the same instance and priced through [`AccessStats::charged`].
//!
//! The PR-5 instance-optimality certificate ([`OptimalityOracle`])
//! anchors the scale from below: every executed candidate is a correct
//! algorithm, so its charged/certificate ratio is ≥ 1 — which makes
//! "2× the cheapest executed" a statement about real costs, not about
//! a denominator that could collapse to zero.

use proptest::prelude::*;

use fmdb_core::scoring::tnorms::Min;
use fmdb_core::stats::DEFAULT_HISTOGRAM_BINS;
use fmdb_middleware::algorithms::naive::Naive;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::optimality::OptimalityOracle;
use fmdb_middleware::planner::{choose_plan, plan_algorithm, PhysicalPlan, PlanQuery, QueryStats};
use fmdb_middleware::policy::ExecPolicy;
use fmdb_middleware::source::{GradedSource, VecSource};
use fmdb_middleware::stats::{CostModel, SourceStats};
use fmdb_middleware::workload::independent_uniform;

/// One randomly drawn planning instance.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    ratio: f64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            60usize..200,
            2usize..=4,
            prop_oneof![Just(1usize), Just(5), Just(20)],
        ),
        (
            0u64..1_000_000,
            prop_oneof![Just(1.0f64), Just(3.0), Just(10.0), Just(30.0)],
        ),
    )
        .prop_map(|((n, m, k), (seed, ratio))| Scenario {
            n,
            m,
            k,
            seed,
            ratio,
        })
}

/// Gathers the planner's statistics the way the engine does: one
/// equi-depth histogram per source, all-or-nothing.
fn stats_for(sources: &mut [VecSource]) -> QueryStats {
    let per: Vec<SourceStats> = sources
        .iter()
        .map(|s| {
            SourceStats::new(
                s.grade_histogram(DEFAULT_HISTOGRAM_BINS)
                    .expect("VecSource always builds a histogram"),
            )
        })
        .collect();
    QueryStats::new(per)
}

/// Runs `plan` over a fresh copy of the instance and returns its
/// charged cost under `model` (`None` for plans with no engine-side
/// algorithm other than the naive scan).
fn executed(plan: PhysicalPlan, sources: &[VecSource], k: usize, model: &CostModel) -> Option<f64> {
    let algorithm: Box<dyn TopKAlgorithm + Send + Sync> = match plan {
        PhysicalPlan::FullScan => Box::new(Naive),
        other => plan_algorithm(other, 0.0)?,
    };
    let mut copies = sources.to_vec();
    let mut refs: Vec<&mut dyn GradedSource> = copies
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    let result = algorithm.top_k(&mut refs, &Min, k).ok()?;
    Some(result.stats.charged(model))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pick's executed charged cost is within 2× of the cheapest
    /// executed candidate, under every cost-ratio the scenario sweeps.
    #[test]
    fn chosen_plan_regret_is_at_most_two(s in scenario()) {
        let model = CostModel::random_to_sorted_ratio(s.ratio).expect("valid ratio");
        let policy = ExecPolicy::new().cost_model(model);
        let mut sources = independent_uniform(s.n, s.m, s.seed);
        let stats = stats_for(&mut sources);
        let query = PlanQuery::fuzzy(s.n, s.m, s.k);
        let explain = choose_plan(&query, Some(&stats), &policy);

        let runs: Vec<(PhysicalPlan, f64)> = explain
            .candidates
            .iter()
            .filter_map(|&(plan, _)| {
                executed(plan, &sources, s.k, &model).map(|c| (plan, c))
            })
            .collect();
        prop_assert!(!runs.is_empty(), "no candidate executed");
        let chosen = runs
            .iter()
            .find(|(plan, _)| *plan == explain.chosen)
            .map(|&(_, c)| c)
            .expect("the chosen plan is always executable here");
        let best = runs.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        let regret = if best > 0.0 { chosen / best } else { 1.0 };
        prop_assert!(
            regret <= 2.0 + 1e-9,
            "regret {regret:.3} for {} (chosen {chosen}, best {best}) on \
             n={} m={} k={} seed={} ratio={}; runs: {runs:?}",
            explain.chosen, s.n, s.m, s.k, s.seed, s.ratio,
        );
    }

    /// Sanity anchor: the chosen plan, like every correct strategy,
    /// never beats the instance-optimality certificate.
    #[test]
    fn chosen_plan_respects_the_certificate(s in scenario()) {
        let model = CostModel::random_to_sorted_ratio(s.ratio).expect("valid ratio");
        let policy = ExecPolicy::new().cost_model(model);
        let mut sources = independent_uniform(s.n, s.m, s.seed);
        let stats = stats_for(&mut sources);
        let query = PlanQuery::fuzzy(s.n, s.m, s.k);
        let explain = choose_plan(&query, Some(&stats), &policy);
        let chosen = executed(explain.chosen, &sources, s.k, &model)
            .expect("the chosen plan is always executable here");

        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let oracle = OptimalityOracle::build(&mut refs, &Min, s.k, 0.0).expect("valid instance");
        let ratio = oracle.ratio(chosen, &model);
        prop_assert!(
            ratio >= 1.0 - 1e-9,
            "chosen {} charged {chosen} beat the certificate (ratio {ratio:.3})",
            explain.chosen,
        );
    }
}
