//! Repositories: the autonomous subsystems Garlic integrates (§4).
//!
//! "A single Garlic query can access data in a number of different
//! subsystems" — here a relational-style [`TableRepository`] (crisp
//! predicates like `Artist='Beatles'`) and a QBIC-style
//! [`QbicRepository`] (fuzzy predicates like `Color='red'` or
//! `Shape='round'`, graded by the feature distances of `fmdb-media`).
//!
//! Each repository turns an atomic query into a [`VecSource`] exposing
//! exactly the paper's two access modes. Grades are computed eagerly
//! when the source is built — the middleware's cost model deliberately
//! meters only the accesses the *algorithm* performs against the
//! source, matching the paper's black-box view of subsystems.

use std::collections::HashMap;
use std::fmt;

use fmdb_core::query::{AtomicQuery, Target};
use fmdb_core::score::Score;
use fmdb_media::color::{ColorError, ColorHistogram, Rgb};
use fmdb_media::distance::DistanceError;
use fmdb_media::embed::{EmbedError, EmbeddedCorpus, EmbeddedSpace};
use fmdb_media::shape::{turning_distance, Polygon};
use fmdb_media::synth::SyntheticDb;
use fmdb_media::texture::named_texture;
use fmdb_middleware::source::VecSource;
use fmdb_middleware::store::{build_store_from_source, BuildConfig, StoreError};

use crate::object::{Oid, Value};

/// Whether an attribute grades crisply (0/1) or fuzzily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributeKind {
    /// Traditional predicate: every grade is 0 or 1.
    Crisp,
    /// Similarity predicate: grades range over `[0, 1]`.
    Fuzzy,
}

/// Error raised by repositories.
#[derive(Debug, Clone)]
pub enum RepoError {
    /// The repository has no such attribute.
    UnknownAttribute {
        /// Repository name.
        repository: String,
        /// The attribute asked for.
        attribute: String,
    },
    /// The target name could not be resolved (unknown color/shape).
    UnknownTarget(String),
    /// The target type does not fit the attribute (e.g. a feature
    /// vector against a crisp column).
    TargetMismatch {
        /// The attribute.
        attribute: String,
        /// Human description of what was expected.
        expected: &'static str,
    },
    /// Feature-layer failure.
    Color(ColorError),
    /// Distance-layer failure.
    Distance(DistanceError),
    /// Embedding-kernel failure.
    Embed(EmbedError),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::UnknownAttribute {
                repository,
                attribute,
            } => write!(
                f,
                "repository '{repository}' has no attribute '{attribute}'"
            ),
            RepoError::UnknownTarget(t) => write!(f, "unknown similarity target '{t}'"),
            RepoError::TargetMismatch {
                attribute,
                expected,
            } => write!(f, "attribute '{attribute}' expects {expected}"),
            RepoError::Color(e) => write!(f, "{e}"),
            RepoError::Distance(e) => write!(f, "{e}"),
            RepoError::Embed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<ColorError> for RepoError {
    fn from(e: ColorError) -> Self {
        RepoError::Color(e)
    }
}

impl From<DistanceError> for RepoError {
    fn from(e: DistanceError) -> Self {
        RepoError::Distance(e)
    }
}

impl From<EmbedError> for RepoError {
    fn from(e: EmbedError) -> Self {
        RepoError::Embed(e)
    }
}

/// A subsystem that can grade its universe against atomic queries.
pub trait Repository {
    /// The subsystem's name (also its id-mapping namespace).
    fn name(&self) -> &str;

    /// The attributes this repository can grade.
    fn attributes(&self) -> Vec<(String, AttributeKind)>;

    /// Number of objects in the repository.
    fn universe_size(&self) -> usize;

    /// Builds the graded source for `query` (ids are repository-local).
    fn source_for(&self, query: &AtomicQuery) -> Result<VecSource, RepoError>;

    /// For crisp attributes: the exact match set (repository-local
    /// ids), used by the crisp-filter plan. `Ok(None)` means the
    /// attribute is fuzzy.
    fn crisp_matches(&self, query: &AtomicQuery) -> Result<Option<Vec<Oid>>, RepoError>;
}

/// Error persisting a repository's graded source to a paged store.
#[derive(Debug)]
pub enum PersistError {
    /// Grading the query failed.
    Repo(RepoError),
    /// Writing the store file failed.
    Store(StoreError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Repo(e) => write!(f, "{e}"),
            PersistError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// One-shot bridge from any [`Repository`] to the middleware's paged
/// column store: grades `query` eagerly (the repository's normal
/// source construction) and persists the resulting pairs at `path`.
/// Reopening with [`fmdb_middleware::store::PagedStore::open`] yields
/// a source bit-identical to the [`VecSource`] the repository serves —
/// the out-of-core path for corpora too large to re-grade per query.
pub fn persist_source(
    repo: &dyn Repository,
    query: &AtomicQuery,
    path: &std::path::Path,
    cfg: &BuildConfig,
) -> Result<(), PersistError> {
    let mut source = repo.source_for(query).map_err(PersistError::Repo)?;
    build_store_from_source(path, &mut source, cfg).map_err(PersistError::Store)
}

/// A relational-style table of crisp attributes.
#[derive(Debug, Clone)]
pub struct TableRepository {
    name: String,
    /// attr → (oid → value); all rows share the same oid universe.
    columns: HashMap<String, HashMap<Oid, Value>>,
    universe: Vec<Oid>,
}

impl TableRepository {
    /// An empty table named `name` over the oid universe `0..n`.
    pub fn new(name: impl Into<String>, n: u64) -> TableRepository {
        TableRepository {
            name: name.into(),
            columns: HashMap::new(),
            universe: (0..n).collect(),
        }
    }

    /// Sets `attr` of object `oid` to `value`.
    pub fn set(&mut self, oid: Oid, attr: impl Into<String>, value: Value) {
        self.columns
            .entry(attr.into())
            .or_default()
            .insert(oid, value);
    }

    fn matches(&self, query: &AtomicQuery) -> Result<Vec<Oid>, RepoError> {
        let column =
            self.columns
                .get(&query.attribute)
                .ok_or_else(|| RepoError::UnknownAttribute {
                    repository: self.name.clone(),
                    attribute: query.attribute.clone(),
                })?;
        let wanted = match &query.target {
            Target::Text(s) => Value::Text(s.clone()),
            Target::Int(i) => Value::Int(*i),
            Target::Similar(_) | Target::Feature(_) => {
                return Err(RepoError::TargetMismatch {
                    attribute: query.attribute.clone(),
                    expected: "an exact (crisp) text or integer target",
                })
            }
        };
        let mut out: Vec<Oid> = self
            .universe
            .iter()
            .filter(|oid| column.get(oid) == Some(&wanted))
            .copied()
            .collect();
        out.sort_unstable();
        Ok(out)
    }
}

impl Repository for TableRepository {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<(String, AttributeKind)> {
        let mut v: Vec<_> = self
            .columns
            .keys()
            .map(|a| (a.clone(), AttributeKind::Crisp))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn universe_size(&self) -> usize {
        self.universe.len()
    }

    fn source_for(&self, query: &AtomicQuery) -> Result<VecSource, RepoError> {
        let matches = self.matches(query)?;
        let matched: std::collections::HashSet<Oid> = matches.into_iter().collect();
        let grades: Vec<(Oid, Score)> = self
            .universe
            .iter()
            .map(|&oid| (oid, Score::crisp(matched.contains(&oid))))
            .collect();
        Ok(VecSource::new(format!("{}:{}", self.name, query), grades))
    }

    fn crisp_matches(&self, query: &AtomicQuery) -> Result<Option<Vec<Oid>>, RepoError> {
        self.matches(query).map(Some)
    }
}

/// A QBIC-style image repository grading `Color`, `Shape`, and
/// `Texture` queries against a [`SyntheticDb`].
///
/// Targets may be named prototypes (`Similar("red")`,
/// `Similar("round")`, `Similar("coarse")`) or **query-by-example**
/// references `Similar("#42")` — §2's "selecting an image I … and
/// asking for other images whose colors are 'close to' that of
/// image I".
pub struct QbicRepository {
    name: String,
    db: SyntheticDb,
    /// Pre-embedded color histograms: `Color` queries cost one O(k²)
    /// query embedding plus n O(k) norms instead of n O(k²) quadratic
    /// forms.
    color_corpus: EmbeddedCorpus,
    /// Named shape prototypes ("round", "boxy", "spiky", …).
    shape_prototypes: HashMap<String, Polygon>,
    /// Resampling resolution for turning-function comparisons.
    turning_samples: usize,
    /// Attribute-name prefix, so several image repositories can coexist
    /// in one catalog (`"Album"` ⇒ `AlbumColor`, `AlbumShape`,
    /// `AlbumTexture` — the paper's own attribute spelling).
    attribute_prefix: String,
}

impl fmt::Debug for QbicRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QbicRepository({}, {} objects)",
            self.name,
            self.db.len()
        )
    }
}

/// Resolves a color name to RGB; the vocabulary a color-wheel UI would
/// offer.
pub fn named_color(name: &str) -> Option<Rgb> {
    let c = match name.to_ascii_lowercase().as_str() {
        "red" => Rgb::new(1.0, 0.0, 0.0),
        "green" => Rgb::new(0.0, 1.0, 0.0),
        "blue" => Rgb::new(0.0, 0.0, 1.0),
        "yellow" => Rgb::new(1.0, 1.0, 0.0),
        "cyan" => Rgb::new(0.0, 1.0, 1.0),
        "magenta" => Rgb::new(1.0, 0.0, 1.0),
        "pink" => Rgb::new(1.0, 0.6, 0.7),
        "orange" => Rgb::new(1.0, 0.55, 0.0),
        "white" => Rgb::new(1.0, 1.0, 1.0),
        "black" => Rgb::new(0.0, 0.0, 0.0),
        "gray" | "grey" => Rgb::new(0.5, 0.5, 0.5),
        _ => return None,
    };
    Some(c)
}

impl QbicRepository {
    /// Wraps a synthetic image database.
    pub fn new(name: impl Into<String>, db: SyntheticDb) -> QbicRepository {
        let space = EmbeddedSpace::for_space(&db.space)
            // lint:allow(no-panic): the constant QBIC similarity matrix is PD after zero-sum projection; the embed tests prove it
            .expect("QBIC similarity matrix embeds (PD after zero-sum projection)");
        let histograms: Vec<ColorHistogram> =
            db.objects.iter().map(|o| o.histogram.clone()).collect();
        let color_corpus = EmbeddedCorpus::build(space, &histograms)
            // lint:allow(no-panic): histograms come from the same SyntheticDb space, so dimensions match by construction
            .expect("database histograms share the space's dimension");
        let mut shape_prototypes = HashMap::new();
        shape_prototypes.insert(
            "round".to_owned(),
            // lint:allow(no-panic): constant prototype geometry with positive radii
            Polygon::ellipse(0.0, 0.0, 1.0, 1.0, 40).expect("unit circle is valid"),
        );
        shape_prototypes.insert(
            "boxy".to_owned(),
            // lint:allow(no-panic): constant prototype geometry with positive extent
            Polygon::rectangle(0.0, 0.0, 2.0, 1.0).expect("2x1 rectangle is valid"),
        );
        shape_prototypes.insert(
            "spiky".to_owned(),
            // lint:allow(no-panic): constant prototype geometry with positive radii
            Polygon::star(6, 1.0, 0.35, 0.0, 0.0).expect("6-spike star is valid"),
        );
        QbicRepository {
            name: name.into(),
            db,
            color_corpus,
            shape_prototypes,
            turning_samples: 64,
            attribute_prefix: String::new(),
        }
    }

    /// Prefixes every attribute name (e.g. `"Album"` serves
    /// `AlbumColor`/`AlbumShape`/`AlbumTexture`), letting multiple
    /// image repositories register in one catalog.
    pub fn with_attribute_prefix(mut self, prefix: impl Into<String>) -> QbicRepository {
        self.attribute_prefix = prefix.into();
        self
    }

    /// The underlying database.
    pub fn db(&self) -> &SyntheticDb {
        &self.db
    }

    /// Resolves a `#id` example reference to the object, if the target
    /// uses that syntax.
    fn example_object(
        &self,
        name: &str,
    ) -> Option<Result<&fmdb_media::synth::MediaObject, RepoError>> {
        let id_text = name.strip_prefix('#')?;
        Some(match id_text.parse::<usize>() {
            Ok(id) if id < self.db.len() => Ok(&self.db.objects[id]),
            _ => Err(RepoError::UnknownTarget(name.to_owned())),
        })
    }

    fn color_source(&self, query: &AtomicQuery) -> Result<VecSource, RepoError> {
        let target_hist = match &query.target {
            Target::Similar(name) => {
                if let Some(example) = self.example_object(name) {
                    example?.histogram.clone()
                } else {
                    let rgb =
                        named_color(name).ok_or_else(|| RepoError::UnknownTarget(name.clone()))?;
                    ColorHistogram::pure(&self.db.space, rgb)
                }
            }
            Target::Feature(bins) => ColorHistogram::from_masses(bins.clone())?,
            Target::Text(_) | Target::Int(_) => {
                return Err(RepoError::TargetMismatch {
                    attribute: query.attribute.clone(),
                    expected: "a similarity or feature target",
                })
            }
        };
        let distances = self.color_corpus.distances(&target_hist)?;
        Ok(self.source_from_distances(query, &distances))
    }

    fn texture_source(&self, query: &AtomicQuery) -> Result<VecSource, RepoError> {
        let prototype = match &query.target {
            Target::Similar(name) => {
                if let Some(example) = self.example_object(name) {
                    example?.texture
                } else {
                    named_texture(name).ok_or_else(|| RepoError::UnknownTarget(name.clone()))?
                }
            }
            _ => {
                return Err(RepoError::TargetMismatch {
                    attribute: query.attribute.clone(),
                    expected: "a named texture target (coarse/fine/smooth/rough/directional)",
                })
            }
        };
        let distances: Vec<f64> = self
            .db
            .objects
            .iter()
            .map(|o| o.texture.distance(&prototype))
            .collect();
        Ok(self.source_from_distances(query, &distances))
    }

    fn shape_source(&self, query: &AtomicQuery) -> Result<VecSource, RepoError> {
        let prototype = match &query.target {
            Target::Similar(name) => {
                if let Some(example) = self.example_object(name) {
                    &example?.shape
                } else {
                    self.shape_prototypes
                        .get(&name.to_ascii_lowercase())
                        .ok_or_else(|| RepoError::UnknownTarget(name.clone()))?
                }
            }
            _ => {
                return Err(RepoError::TargetMismatch {
                    attribute: query.attribute.clone(),
                    expected: "a named shape target (round/boxy/spiky)",
                })
            }
        };
        let distances: Vec<f64> = self
            .db
            .objects
            .iter()
            .map(|o| turning_distance(&o.shape, prototype, self.turning_samples))
            .collect();
        Ok(self.source_from_distances(query, &distances))
    }

    /// Distance → grade via linear cutoff at the observed maximum, so
    /// the farthest object grades 0 and identical objects grade 1.
    fn source_from_distances(&self, query: &AtomicQuery, distances: &[f64]) -> VecSource {
        let dmax = distances.iter().copied().fold(0.0_f64, f64::max).max(1e-12);
        let grades: Vec<(Oid, Score)> = distances
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as Oid, Score::clamped(1.0 - d / dmax)))
            .collect();
        VecSource::new(format!("{}:{}", self.name, query), grades)
    }
}

impl Repository for QbicRepository {
    fn name(&self) -> &str {
        &self.name
    }

    fn attributes(&self) -> Vec<(String, AttributeKind)> {
        ["Color", "Shape", "Texture"]
            .iter()
            .map(|a| {
                (
                    format!("{}{a}", self.attribute_prefix),
                    AttributeKind::Fuzzy,
                )
            })
            .collect()
    }

    fn universe_size(&self) -> usize {
        self.db.len()
    }

    fn source_for(&self, query: &AtomicQuery) -> Result<VecSource, RepoError> {
        let unprefixed = query
            .attribute
            .strip_prefix(&self.attribute_prefix)
            .unwrap_or("");
        match unprefixed {
            "Color" => self.color_source(query),
            "Shape" => self.shape_source(query),
            "Texture" => self.texture_source(query),
            _ => Err(RepoError::UnknownAttribute {
                repository: self.name.clone(),
                attribute: query.attribute.clone(),
            }),
        }
    }

    fn crisp_matches(&self, _query: &AtomicQuery) -> Result<Option<Vec<Oid>>, RepoError> {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmdb_core::query::Query;
    use fmdb_media::synth::{ShapeFamily, SynthConfig};
    use fmdb_middleware::source::GradedSource;

    fn atom(attr: &str, target: Target) -> AtomicQuery {
        match Query::atomic(attr, target) {
            Query::Atomic(a) => a,
            _ => unreachable!(),
        }
    }

    #[test]
    fn table_grades_crisply() {
        let mut t = TableRepository::new("cds", 4);
        t.set(0, "Artist", Value::text("Beatles"));
        t.set(1, "Artist", Value::text("Kinks"));
        t.set(2, "Artist", Value::text("Beatles"));
        let q = atom("Artist", Target::Text("Beatles".into()));
        let mut src = t.source_for(&q).unwrap();
        assert_eq!(src.info().universe_size, 4);
        assert_eq!(src.random_access(0), Score::ONE);
        assert_eq!(src.random_access(1), Score::ZERO);
        assert_eq!(src.random_access(3), Score::ZERO); // no value set
        assert_eq!(t.crisp_matches(&q).unwrap(), Some(vec![0, 2]));
    }

    #[test]
    fn table_rejects_fuzzy_targets_and_unknown_attributes() {
        let t = TableRepository::new("cds", 2);
        assert!(matches!(
            t.source_for(&atom("Artist", Target::Text("x".into()))),
            Err(RepoError::UnknownAttribute { .. })
        ));
        let mut t2 = TableRepository::new("cds", 2);
        t2.set(0, "Artist", Value::text("Beatles"));
        assert!(matches!(
            t2.source_for(&atom("Artist", Target::Similar("red".into()))),
            Err(RepoError::TargetMismatch { .. })
        ));
    }

    fn small_qbic() -> QbicRepository {
        QbicRepository::new(
            "qbic",
            SyntheticDb::generate(&SynthConfig {
                count: 40,
                bins_per_channel: 3,
                seed: 11,
                ..SynthConfig::default()
            }),
        )
    }

    #[test]
    fn qbic_color_query_ranks_reddish_objects_first() {
        let repo = small_qbic();
        let mut src = repo
            .source_for(&atom("Color", Target::Similar("red".into())))
            .unwrap();
        // The top object under sorted access should be redder (in
        // dominant color) than the bottom one.
        let first = src.sorted_next().unwrap();
        let mut last = first;
        while let Some(so) = src.sorted_next() {
            last = so;
        }
        let dom_first = repo.db().objects[first.id as usize].dominant;
        let dom_last = repo.db().objects[last.id as usize].dominant;
        let redness = |c: Rgb| c.r - (c.g + c.b) / 2.0;
        assert!(
            redness(dom_first) > redness(dom_last),
            "first {:?} should be redder than last {:?}",
            dom_first,
            dom_last
        );
    }

    #[test]
    fn qbic_shape_query_prefers_matching_family() {
        let repo = small_qbic();
        let mut src = repo
            .source_for(&atom("Shape", Target::Similar("round".into())))
            .unwrap();
        let top = src.sorted_next().unwrap();
        assert_eq!(
            repo.db().objects[top.id as usize].family,
            ShapeFamily::Round,
            "top match for 'round' should be an ellipse"
        );
    }

    #[test]
    fn qbic_rejects_unknown_targets() {
        let repo = small_qbic();
        assert!(matches!(
            repo.source_for(&atom("Color", Target::Similar("chartreuse-ish".into()))),
            Err(RepoError::UnknownTarget(_))
        ));
        assert!(matches!(
            repo.source_for(&atom("Shape", Target::Similar("amorphous".into()))),
            Err(RepoError::UnknownTarget(_))
        ));
        assert!(matches!(
            repo.source_for(&atom("Texture", Target::Similar("velvety".into()))),
            Err(RepoError::UnknownTarget(_))
        ));
        assert!(matches!(
            repo.source_for(&atom("Luminance", Target::Similar("bright".into()))),
            Err(RepoError::UnknownAttribute { .. })
        ));
        assert_eq!(
            repo.crisp_matches(&atom("Color", Target::Similar("red".into())))
                .unwrap(),
            None
        );
    }

    #[test]
    fn query_by_example_ranks_the_example_first() {
        let repo = small_qbic();
        for attr in ["Color", "Shape", "Texture"] {
            let mut src = repo
                .source_for(&atom(attr, Target::Similar("#7".into())))
                .unwrap();
            let top = src.sorted_next().unwrap();
            assert_eq!(top.id, 7, "{attr}: the example must match itself best");
            assert_eq!(top.grade, Score::ONE, "{attr}");
        }
    }

    #[test]
    fn query_by_example_rejects_bad_ids() {
        let repo = small_qbic();
        assert!(matches!(
            repo.source_for(&atom("Color", Target::Similar("#99999".into()))),
            Err(RepoError::UnknownTarget(_))
        ));
        assert!(matches!(
            repo.source_for(&atom("Color", Target::Similar("#notanid".into()))),
            Err(RepoError::UnknownTarget(_))
        ));
    }

    #[test]
    fn qbic_texture_query_orders_by_descriptor_distance() {
        let repo = small_qbic();
        let mut src = repo
            .source_for(&atom("Texture", Target::Similar("coarse".into())))
            .unwrap();
        let proto = fmdb_media::texture::named_texture("coarse").unwrap();
        let top = src.sorted_next().unwrap();
        let mut bottom = top;
        while let Some(so) = src.sorted_next() {
            bottom = so;
        }
        let d_top = repo.db().objects[top.id as usize].texture.distance(&proto);
        let d_bottom = repo.db().objects[bottom.id as usize]
            .texture
            .distance(&proto);
        assert!(
            d_top < d_bottom,
            "top {d_top} should be closer than bottom {d_bottom}"
        );
    }

    /// Scratch path under the workspace `target/` dir (tests must not
    /// write outside the repository).
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/store-tests");
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(name)
    }

    #[test]
    fn persisted_repository_source_roundtrips_exactly() {
        use fmdb_middleware::store::{PagedStore, StoreOptions};
        let repo = small_qbic();
        let q = atom("Color", Target::Similar("red".into()));
        let path = scratch("garlic-color.fmdb");
        persist_source(&repo, &q, &path, &BuildConfig::DEFAULT).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        let mut paged = store.source();
        let mut live = repo.source_for(&q).unwrap();
        assert_eq!(paged.info().universe_size, live.info().universe_size);
        loop {
            let (a, b) = (paged.sorted_next(), live.sorted_next());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        for oid in 0..45u64 {
            assert_eq!(
                paged.random_access(oid),
                live.random_access(oid),
                "oid {oid}"
            );
        }
    }

    #[test]
    fn persist_source_propagates_grading_errors() {
        let repo = small_qbic();
        let q = atom("Color", Target::Similar("chartreuse-ish".into()));
        let path = scratch("garlic-bad.fmdb");
        assert!(matches!(
            persist_source(&repo, &q, &path, &BuildConfig::DEFAULT),
            Err(PersistError::Repo(RepoError::UnknownTarget(_)))
        ));
    }

    /// The media layer's graded-pairs export feeds `build_store`
    /// directly — the one-shot path for an embedded corpus too large
    /// to re-grade per query.
    #[test]
    fn media_graded_pairs_persist_and_roundtrip() {
        use fmdb_media::prelude::ExpDecay;
        use fmdb_middleware::store::{build_store, PagedStore, StoreOptions};
        let repo = small_qbic();
        let corpus = EmbeddedCorpus::build(
            EmbeddedSpace::for_space(&repo.db().space).unwrap(),
            &repo
                .db()
                .objects
                .iter()
                .map(|o| o.histogram.clone())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let query = repo.db().objects[3].histogram.clone();
        let scorer = ExpDecay::new(1.0).unwrap();
        let pairs = corpus.graded_pairs(&query, &scorer).unwrap();
        assert_eq!(pairs.len(), corpus.len());

        let path = scratch("garlic-corpus.fmdb");
        build_store(&path, "corpus", pairs.clone(), &BuildConfig::DEFAULT).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        let mut paged = store.source();
        let mut mem = VecSource::new("corpus", pairs);
        loop {
            let (a, b) = (paged.sorted_next(), mem.sorted_next());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // The example object grades 1 (zero self-distance) and tops
        // the persisted sorted run.
        paged.rewind();
        assert_eq!(paged.sorted_next().map(|so| so.id), Some(3));
    }

    #[test]
    fn qbic_feature_targets_work() {
        let repo = small_qbic();
        let k = repo.db().space.k();
        let mut masses = vec![0.0; k];
        masses[0] = 1.0;
        let src = repo
            .source_for(&atom("Color", Target::Feature(masses)))
            .unwrap();
        assert_eq!(src.info().universe_size, 40);
    }

    #[test]
    fn attribute_prefixes_allow_multiple_image_repositories() {
        use crate::catalog::Catalog;
        let mk = |seed| {
            SyntheticDb::generate(&SynthConfig {
                count: 20,
                bins_per_channel: 3,
                seed,
                ..SynthConfig::default()
            })
        };
        let covers = QbicRepository::new("covers", mk(1)).with_attribute_prefix("Album");
        let booklets = QbicRepository::new("booklets", mk(2)).with_attribute_prefix("Booklet");
        assert_eq!(
            covers.attributes()[0].0,
            "AlbumColor",
            "the paper's attribute spelling"
        );
        let src = covers
            .source_for(&atom("AlbumColor", Target::Similar("red".into())))
            .unwrap();
        assert_eq!(src.info().universe_size, 20);
        assert!(matches!(
            covers.source_for(&atom("Color", Target::Similar("red".into()))),
            Err(RepoError::UnknownAttribute { .. })
        ));
        // Both register in one catalog without attribute collisions.
        let mut catalog = Catalog::new();
        catalog.register(Box::new(covers)).unwrap();
        catalog.register(Box::new(booklets)).unwrap();
        assert!(catalog.repository_for("AlbumShape").is_ok());
        assert!(catalog.repository_for("BookletTexture").is_ok());
    }

    #[test]
    fn named_colors_resolve() {
        assert!(named_color("red").is_some());
        assert!(named_color("RED").is_some());
        assert!(named_color("grey").is_some());
        assert!(named_color("mauve").is_none());
    }
}
