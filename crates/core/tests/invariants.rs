//! Runtime-invariant suite: the dynamic half of the workspace's
//! correctness tooling.
//!
//! `cargo xtask lint` enforces hygiene the type system can't (no
//! panicking paths in library code, no raw float equality, mandatory
//! crate attributes). What the linter cannot prove statically —
//! *values* staying inside the paper's domains — is trapped here:
//! `Score` construction funnels through a `debug_assert!` range check,
//! so every test in this suite doubles as a tripwire. These tests run
//! under `cargo test` (debug assertions on), sweeping the scoring
//! surface densely enough that an out-of-range or NaN grade anywhere
//! in the pipeline panics the build.

use fmdb_core::float;
use fmdb_core::prelude::*;
use fmdb_core::score::Score;
use fmdb_core::scoring::conorms::all_conorms;
use fmdb_core::scoring::negation::all_negations;
use fmdb_core::scoring::tnorms::all_tnorms;
use fmdb_core::weights::Weighting;

/// A dense unit-interval sweep including the endpoints, values that
/// stress round-off (`0.1 + 0.2`), and denormal-adjacent tinies.
fn sweep() -> Vec<Score> {
    let mut grid: Vec<f64> = (0..=40).map(|i| i as f64 / 40.0).collect();
    grid.extend([0.1 + 0.2, 1e-300, 1.0 - 1e-16, f64::MIN_POSITIVE]);
    grid.into_iter().map(Score::clamped).collect()
}

/// Every grade must be a finite number in `[0, 1]`; with debug
/// assertions on, `Score`'s own `debug_checked` already panicked if
/// not, so this is belt *and* suspenders (and keeps the test
/// meaningful under `--release`).
fn assert_grade(context: &str, s: Score) {
    assert!(
        s.value().is_finite() && (0.0..=1.0).contains(&s.value()),
        "{context}: grade {} escaped [0, 1]",
        s.value()
    );
}

#[test]
fn score_constructors_stay_in_range() {
    for v in [-1e300, -1.0, -1e-300, 0.0, 0.5, 1.0, 1e300, f64::NAN] {
        assert_grade("clamped", Score::clamped(v));
    }
    assert!(Score::new(f64::NAN).is_err());
    assert!(Score::new(1.0 + 1e-9).is_err());
    assert!(Score::new(f64::INFINITY).is_err());
}

#[test]
fn negate_min_max_preserve_the_interval() {
    for &a in &sweep() {
        assert_grade("negate", a.negate());
        for &b in &sweep() {
            assert_grade("min", a.min(b));
            assert_grade("max", a.max(b));
        }
    }
}

#[test]
fn every_tnorm_output_is_a_grade() {
    for norm in all_tnorms() {
        for &a in &sweep() {
            for &b in &sweep() {
                assert_grade(&norm.norm_name(), norm.t(a, b));
            }
        }
    }
}

#[test]
fn every_conorm_output_is_a_grade() {
    for conorm in all_conorms() {
        for &a in &sweep() {
            for &b in &sweep() {
                assert_grade(&conorm.conorm_name(), conorm.s(a, b));
            }
        }
    }
}

#[test]
fn every_negation_output_is_a_grade() {
    for neg in all_negations() {
        for &a in &sweep() {
            assert_grade(&neg.negation_name(), neg.n(a));
        }
    }
}

#[test]
fn weighted_combines_stay_in_range() {
    let weightings = [
        Weighting::new(vec![1.0]).expect("valid weighting"),
        Weighting::new(vec![0.7, 0.3]).expect("valid weighting"),
        Weighting::new(vec![0.5, 0.3, 0.2]).expect("valid weighting"),
        Weighting::uniform(3).expect("valid weighting"),
    ];
    let grades = sweep();
    for w in &weightings {
        let m = w.arity();
        for window in grades.windows(m) {
            let out = weighted_combine(&Min, w, window);
            assert_grade("weighted(min)", out);
            let out = weighted_combine(&Product, w, window);
            assert_grade("weighted(product)", out);
        }
    }
}

#[test]
fn crispness_is_epsilon_tolerant() {
    assert!(Score::ONE.is_crisp());
    assert!(Score::ZERO.is_crisp());
    assert!(Score::clamped(1.0 - float::EPSILON / 2.0).is_crisp());
    assert!(Score::clamped(float::EPSILON / 2.0).is_crisp());
    assert!(!Score::HALF.is_crisp());
    assert!(!Score::clamped(1e-6).is_crisp());
}

#[test]
fn shared_epsilon_matches_score_comparisons() {
    let a = Score::clamped(0.1 + 0.2);
    let b = Score::clamped(0.3);
    assert!(float::approx_eq(a.value(), b.value()));
    assert!(a.approx_eq(b, float::EPSILON));
}
