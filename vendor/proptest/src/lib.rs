//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, dependency-free property-testing
//! harness. It keeps proptest's surface for the features the test
//! suites use — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_assume!`, `prop_oneof!`, `Just`, range and tuple strategies,
//! `prop_map`/`prop_flat_map`/`prop_filter`, `collection::vec`, and
//! `num::f64::ANY` — with two simplifications:
//!
//! * **no shrinking** — a failing case reports the generated inputs
//!   verbatim instead of a minimized counterexample;
//! * **deterministic seeding** — cases derive from a fixed seed (or
//!   `PROPTEST_RNG_SEED`), so failures reproduce exactly.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Any `f64` bit pattern: finite values of every magnitude,
        /// infinities, NaNs, and signed zeros.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Strategy over arbitrary `f64` values.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                // Mix raw bit patterns with curated special values so
                // edge cases appear reliably even in short runs.
                match rng.next_u64() % 8 {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    _ => f64::from_bits(rng.next_u64()),
                }
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`test_runner::ProptestConfig`] for every item in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (@items ($cfg:expr)) => {};
    (@items ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @items ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Like `assert!`, but fails the proptest case (with its inputs) by
/// returning `Err` instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!` as a proptest-case failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} == {} failed: left = {:?}, right = {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Like `assert_ne!` as a proptest-case failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "{} != {} failed: both = {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Discards the current case (retrying with fresh inputs) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)*)),
            );
        }
    };
}

/// A strategy choosing uniformly among the given strategies (all must
/// produce the same value type). Upstream's `weight => strategy` arms
/// are accepted but the weights are ignored — selection stays uniform.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
