//! A hand-rolled Rust lexer, sufficient for invariant linting.
//!
//! The build environment is fully offline, so the linter cannot lean
//! on `syn` or `rustc` internals; instead this module tokenizes Rust
//! source by hand. It understands everything a *lexical* linter needs
//! to never misfire inside non-code text:
//!
//! * line (`//`, `///`, `//!`) and nested block (`/* /* */ */`)
//!   comments;
//! * string, raw string (`r#"…"#`, any `#` depth), byte string, char,
//!   and byte literals, with escapes (`'\''`, `"\\"`);
//! * the lifetime-vs-char ambiguity (`'a` vs `'a'`);
//! * numeric literals, distinguishing floats (fraction, exponent, or
//!   `f32`/`f64` suffix) from integers, without swallowing range
//!   punctuation (`0.0..=1.0` lexes as float, `..=`, float);
//! * multi-char operators the rules care about (`==`, `!=`, `::`,
//!   `->`, `=>`, `..`, `..=`, `&&`, `||`, shifts and compound
//!   assignments), so a rule can match one token instead of
//!   reconstructing operator boundaries.
//!
//! Doc comments are ordinary comments to the linter: code inside
//! ```-fenced doctests is exempt from the rules by construction, which
//! matches the policy (doctests are tests).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules match on the text).
    Ident,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
    /// Integer literal, any base, with or without suffix.
    Int,
    /// Float literal: has a fraction, an exponent, or an `f32`/`f64`
    /// suffix.
    Float,
    /// String / raw string / byte-string / char / byte literal.
    StrLike,
    /// Punctuation or operator (possibly multi-char, e.g. `==`).
    Punct,
    /// Line or block comment, doc or plain. Carries the full text.
    Comment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
}

/// Multi-char operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenizes `source`. Never fails: malformed trailing constructs are
/// consumed as best-effort tokens, which is the right behaviour for a
/// linter (rustc will report the real syntax error).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                let text = self.take_line_comment();
                self.push(TokenKind::Comment, text, line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                let text = self.take_block_comment();
                self.push(TokenKind::Comment, text, line, col);
            } else if c == 'r' && self.raw_string_hashes(1).is_some() {
                let hashes = self.raw_string_hashes(1).unwrap_or(0);
                let text = self.take_raw_string(1 + hashes);
                self.push(TokenKind::StrLike, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_string_hashes(2).is_some() {
                let hashes = self.raw_string_hashes(2).unwrap_or(0);
                let text = self.take_raw_string(2 + hashes);
                self.push(TokenKind::StrLike, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('"') {
                let text = self.take_quoted('"', 2);
                self.push(TokenKind::StrLike, text, line, col);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                let text = self.take_quoted('\'', 2);
                self.push(TokenKind::StrLike, text, line, col);
            } else if c == '"' {
                let text = self.take_quoted('"', 1);
                self.push(TokenKind::StrLike, text, line, col);
            } else if c == '\'' {
                self.lex_quote_or_lifetime(line, col);
            } else if c.is_ascii_digit() {
                self.lex_number(line, col);
            } else if c == '_' || c.is_alphabetic() {
                let text = self.take_while(|ch| ch == '_' || ch.is_alphanumeric());
                self.push(TokenKind::Ident, text, line, col);
            } else {
                self.lex_punct(line, col);
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn take_while(&mut self, keep: impl Fn(char) -> bool) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !keep(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    fn take_line_comment(&mut self) -> String {
        self.take_while(|c| c != '\n')
    }

    fn take_block_comment(&mut self) -> String {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push('/');
                text.push('*');
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                text.push('*');
                text.push('/');
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// If position `at` starts `#*"` (zero or more hashes then a
    /// quote), returns the hash count — i.e. `r` / `br` at `at - 1`
    /// begins a raw string.
    fn raw_string_hashes(&self, at: usize) -> Option<usize> {
        let mut hashes = 0;
        loop {
            match self.peek(at + hashes) {
                Some('#') => hashes += 1,
                Some('"') => return Some(hashes),
                _ => return None,
            }
        }
    }

    /// Consumes a raw string whose prefix (`r##` etc.) is `prefix`
    /// chars long, through the matching `"##…` terminator.
    fn take_raw_string(&mut self, prefix: usize) -> String {
        let mut text = String::new();
        let mut hashes = 0usize;
        for _ in 0..prefix {
            if let Some(c) = self.bump() {
                if c == '#' {
                    hashes += 1;
                }
                text.push(c);
            }
        }
        // `prefix` ended with the opening quote? No: prefix counts
        // `r`+hashes; the quote is next.
        if let Some(c) = self.bump() {
            text.push(c); // the opening `"`
        }
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    matched += 1;
                    if let Some(h) = self.bump() {
                        text.push(h);
                    }
                }
                if matched == hashes {
                    break;
                }
            }
        }
        text
    }

    /// Consumes a quoted literal (string/char/byte/byte-string) with
    /// escape handling. `skip` is the prefix length before the opening
    /// quote's position (1 for `"`, 2 for `b"`).
    fn take_quoted(&mut self, quote: char, skip: usize) -> String {
        let mut text = String::new();
        for _ in 0..skip {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else if c == quote {
                break;
            }
        }
        text
    }

    /// `'` starts either a char literal (`'x'`, `'\n'`) or a lifetime
    /// (`'a`, `'static`). A quote two-or-three chars ahead (or an
    /// escape right after) means char literal.
    fn lex_quote_or_lifetime(&mut self, line: usize, col: usize) {
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        if is_char {
            let text = self.take_quoted('\'', 1);
            self.push(TokenKind::StrLike, text, line, col);
        } else {
            let mut text = String::new();
            if let Some(q) = self.bump() {
                text.push(q);
            }
            text.push_str(&self.take_while(|c| c == '_' || c.is_alphanumeric()));
            self.push(TokenKind::Lifetime, text, line, col);
        }
    }

    fn lex_number(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Radix literal: digits (incl. hex letters) and underscores.
            text.push_str(&self.take_while(|c| c == '_' || c.is_alphanumeric()));
            self.push(TokenKind::Int, text, line, col);
            return;
        }
        text.push_str(&self.take_while(|c| c == '_' || c.is_ascii_digit()));
        // Fraction: a `.` followed by a digit — or a lone trailing `.`
        // not followed by another `.` (range) or an identifier (method
        // call on a literal, e.g. `1.max(2)`).
        if self.peek(0) == Some('.') {
            let next = self.peek(1);
            let fraction = match next {
                Some(c) if c.is_ascii_digit() => true,
                Some('.') => false,
                Some(c) if c == '_' || c.is_alphabetic() => false,
                _ => true, // `1.` at end of expression
            };
            if fraction {
                is_float = true;
                if let Some(dot) = self.bump() {
                    text.push(dot);
                }
                text.push_str(&self.take_while(|c| c == '_' || c.is_ascii_digit()));
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let (sign_ok, digit_at) = match self.peek(1) {
                Some('+' | '-') => (true, 2),
                _ => (false, 1),
            };
            if self
                .peek(digit_at)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false)
            {
                is_float = true;
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                if sign_ok {
                    if let Some(s) = self.bump() {
                        text.push(s);
                    }
                }
                text.push_str(&self.take_while(|c| c == '_' || c.is_ascii_digit()));
            }
        }
        // Suffix (`f64`, `u32`, …): `f32`/`f64` forces float.
        if self
            .peek(0)
            .map(|c| c == '_' || c.is_alphabetic())
            .unwrap_or(false)
        {
            let suffix = self.take_while(|c| c == '_' || c.is_alphanumeric());
            if suffix.starts_with("f32") || suffix.starts_with("f64") {
                is_float = true;
            }
            text.push_str(&suffix);
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn lex_punct(&mut self, line: usize, col: usize) {
        for op in OPERATORS {
            if self.starts_with(op) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, (*op).to_owned(), line, col);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line, col);
        }
    }

    fn starts_with(&self, op: &str) -> bool {
        op.chars()
            .enumerate()
            .all(|(i, expected)| self.peek(i) == Some(expected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn floats_vs_ranges() {
        let toks = kinds("(0.0..=1.0).contains(&v)");
        assert!(toks.contains(&(TokenKind::Float, "0.0".into())));
        assert!(toks.contains(&(TokenKind::Punct, "..=".into())));
        assert!(toks.contains(&(TokenKind::Float, "1.0".into())));
    }

    #[test]
    fn float_forms() {
        assert_eq!(kinds("1e-9")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("3.5")[0].0, TokenKind::Float);
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("42u64")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xff")[0].0, TokenKind::Int);
    }

    #[test]
    fn method_call_on_int_literal_is_not_a_float() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn lifetimes_and_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::StrLike, "'x'".into())));
        assert!(toks.contains(&(TokenKind::StrLike, "'\\''".into())));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "a.unwrap() == 1.0";"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Float));
    }

    #[test]
    fn raw_strings() {
        let toks = kinds(r##"let s = r#"quote " inside"#; x"##);
        assert_eq!(toks[3].0, TokenKind::StrLike);
        assert_eq!(toks.last().map(|t| t.1.as_str()), Some("x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1], (TokenKind::Ident, "code".into()));
    }

    #[test]
    fn operators_are_single_tokens() {
        let toks = kinds("a == b != c && d");
        assert!(toks.contains(&(TokenKind::Punct, "==".into())));
        assert!(toks.contains(&(TokenKind::Punct, "!=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "&&".into())));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
