//! Histogram distance functions, headlined by the quadratic form of
//! eq. (1): `d(x, y) = √((x−y)ᵀ A (x−y))` (Ioka \[Io89\], as implemented
//! in QBIC \[NBE+93\]).
//!
//! "Computing the closeness in color between two images may be
//! computationally expensive" — the quadratic form costs O(k²) per
//! pair, which is exactly why §2.1's filters (see `bounding`) and
//! precomputation (see `fmdb-index::precomputed`) matter.

use std::fmt;

use crate::color::ColorHistogram;
use crate::linalg::SymMatrix;

/// Error raised by distance evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum DistanceError {
    /// Histogram bin counts differ from each other or from the matrix.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Offending dimension.
        got: usize,
    },
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for DistanceError {}

/// A distance between color histograms.
pub trait HistogramDistance {
    /// The distance `d(x, y) ≥ 0`.
    fn distance(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError>;

    /// A short display name.
    fn name(&self) -> String;
}

/// The paper's eq. (1): `d(x, y) = √((x−y)ᵀ A (x−y))`.
///
/// `A` must make the form nonnegative on histogram differences (the
/// QBIC similarity matrix from
/// [`crate::color::ColorSpace::similarity_matrix`] does); tiny negative
/// round-off is clamped to zero before the square root.
#[derive(Debug, Clone)]
pub struct QuadraticFormDistance {
    a: SymMatrix,
}

impl QuadraticFormDistance {
    /// Wraps a similarity matrix.
    pub fn new(a: SymMatrix) -> QuadraticFormDistance {
        QuadraticFormDistance { a }
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &SymMatrix {
        &self.a
    }

    /// The squared form `(x−y)ᵀA(x−y)`, clamped at 0.
    pub fn squared(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError> {
        check_dims(self.a.dim(), x, y)?;
        let z: Vec<f64> = x.bins().iter().zip(y.bins()).map(|(a, b)| a - b).collect();
        Ok(self.a.quadratic_form(&z).max(0.0))
    }
}

impl HistogramDistance for QuadraticFormDistance {
    fn distance(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError> {
        Ok(self.squared(x, y)?.sqrt())
    }

    fn name(&self) -> String {
        format!("quadratic-form(k={})", self.a.dim())
    }
}

/// Plain L2 distance between bin vectors (the special case `A = I`).
#[derive(Debug, Clone, Copy, Default)]
pub struct L2Distance;

impl HistogramDistance for L2Distance {
    fn distance(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError> {
        check_dims(x.k(), x, y)?;
        Ok(x.bins()
            .iter()
            .zip(y.bins())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt())
    }

    fn name(&self) -> String {
        "l2".to_owned()
    }
}

/// L1 (city-block) distance between bin vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Distance;

impl HistogramDistance for L1Distance {
    fn distance(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError> {
        check_dims(x.k(), x, y)?;
        Ok(x.bins()
            .iter()
            .zip(y.bins())
            .map(|(a, b)| (a - b).abs())
            .sum())
    }

    fn name(&self) -> String {
        "l1".to_owned()
    }
}

/// Histogram-intersection *dissimilarity*: `1 − Σ min(xᵢ, yᵢ)` (Swain &
/// Ballard's match measure, complemented so it behaves as a distance).
#[derive(Debug, Clone, Copy, Default)]
pub struct IntersectionDistance;

impl HistogramDistance for IntersectionDistance {
    fn distance(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError> {
        check_dims(x.k(), x, y)?;
        let overlap: f64 = x.bins().iter().zip(y.bins()).map(|(a, b)| a.min(*b)).sum();
        Ok((1.0 - overlap).max(0.0))
    }

    fn name(&self) -> String {
        "intersection".to_owned()
    }
}

fn check_dims(
    expected: usize,
    x: &ColorHistogram,
    y: &ColorHistogram,
) -> Result<(), DistanceError> {
    if x.k() != expected {
        return Err(DistanceError::DimensionMismatch {
            expected,
            got: x.k(),
        });
    }
    if y.k() != expected {
        return Err(DistanceError::DimensionMismatch {
            expected,
            got: y.k(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{ColorSpace, Rgb};

    fn space() -> ColorSpace {
        ColorSpace::rgb_grid(3).unwrap()
    }

    fn all_distances(space: &ColorSpace) -> Vec<Box<dyn HistogramDistance>> {
        vec![
            Box::new(QuadraticFormDistance::new(space.similarity_matrix())),
            Box::new(L2Distance),
            Box::new(L1Distance),
            Box::new(IntersectionDistance),
        ]
    }

    #[test]
    fn identity_of_indiscernibles_and_symmetry() {
        let sp = space();
        let red = ColorHistogram::pure(&sp, Rgb::RED);
        let blue = ColorHistogram::pure(&sp, Rgb::BLUE);
        for d in all_distances(&sp) {
            assert!(d.distance(&red, &red).unwrap().abs() < 1e-9, "{}", d.name());
            let ab = d.distance(&red, &blue).unwrap();
            let ba = d.distance(&blue, &red).unwrap();
            assert!(ab > 0.0, "{}", d.name());
            assert!((ab - ba).abs() < 1e-12, "{}", d.name());
        }
    }

    #[test]
    fn quadratic_form_sees_cross_bin_similarity() {
        // The paper's motivating property: "an image that contains a
        // lot of red and a little green might be considered moderately
        // close in color to another image with a lot of pink and no
        // green" — nearby bins must count as partially similar, which
        // L2 cannot express.
        let sp = space();
        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        let red = ColorHistogram::pure(&sp, Rgb::new(0.99, 0.01, 0.01));
        let pink = ColorHistogram::pure(&sp, Rgb::new(0.99, 0.45, 0.45));
        let blue = ColorHistogram::pure(&sp, Rgb::new(0.01, 0.01, 0.99));
        let d_red_pink = qf.distance(&red, &pink).unwrap();
        let d_red_blue = qf.distance(&red, &blue).unwrap();
        assert!(
            d_red_pink < d_red_blue,
            "quadratic form should rank pink closer to red than blue: {d_red_pink} vs {d_red_blue}"
        );
        // …whereas L2 on disjoint pure bins is constant:
        let l2_pink = L2Distance.distance(&red, &pink).unwrap();
        let l2_blue = L2Distance.distance(&red, &blue).unwrap();
        assert!((l2_pink - l2_blue).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_for_quadratic_form_on_samples() {
        let sp = space();
        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        // A PSD-form induced (semi)norm satisfies the triangle
        // inequality; verify on a few structured histograms.
        let hists: Vec<ColorHistogram> = vec![
            ColorHistogram::pure(&sp, Rgb::RED),
            ColorHistogram::pure(&sp, Rgb::GREEN),
            ColorHistogram::pure(&sp, Rgb::BLUE),
            ColorHistogram::from_masses((1..=27).map(|i| i as f64).collect()).unwrap(),
            ColorHistogram::from_masses((1..=27).rev().map(|i| i as f64).collect()).unwrap(),
        ];
        for a in &hists {
            for b in &hists {
                for c in &hists {
                    let ab = qf.distance(a, b).unwrap();
                    let bc = qf.distance(b, c).unwrap();
                    let ac = qf.distance(a, c).unwrap();
                    assert!(ac <= ab + bc + 1e-9);
                }
            }
        }
    }

    #[test]
    fn intersection_distance_bounds() {
        let sp = space();
        let red = ColorHistogram::pure(&sp, Rgb::RED);
        let blue = ColorHistogram::pure(&sp, Rgb::BLUE);
        assert!((IntersectionDistance.distance(&red, &blue).unwrap() - 1.0).abs() < 1e-12);
        assert!(IntersectionDistance.distance(&red, &red).unwrap().abs() < 1e-12);
    }

    #[test]
    fn l1_is_at_least_l2() {
        let sp = space();
        let a = ColorHistogram::from_masses((1..=27).map(|i| i as f64).collect()).unwrap();
        let b = ColorHistogram::pure(&sp, Rgb::GREEN);
        let l1 = L1Distance.distance(&a, &b).unwrap();
        let l2 = L2Distance.distance(&a, &b).unwrap();
        assert!(l1 >= l2 - 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let sp3 = space();
        let sp2 = ColorSpace::rgb_grid(2).unwrap();
        let a = ColorHistogram::pure(&sp3, Rgb::RED);
        let b = ColorHistogram::pure(&sp2, Rgb::RED);
        let qf = QuadraticFormDistance::new(sp3.similarity_matrix());
        assert!(matches!(
            qf.distance(&a, &b),
            Err(DistanceError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            L2Distance.distance(&a, &b),
            Err(DistanceError::DimensionMismatch { .. })
        ));
    }
}
