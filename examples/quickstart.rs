//! Quickstart: grade objects, combine grades, and run Fagin's
//! algorithm by hand.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fuzzymm::prelude::*;

fn main() {
    // 1. Grades live in [0, 1]; graded sets generalize sets and sorted
    //    lists (§3 of the paper).
    let mut reds: GradedSet<&str> = GradedSet::new();
    reds.insert("sunset.jpg", Score::clamped(0.93));
    reds.insert("ocean.jpg", Score::clamped(0.12));
    reds.insert("barn.jpg", Score::clamped(0.71));
    println!("reddest object: {:?}", reds.best());

    // 2. Scoring functions combine grades of subqueries. The standard
    //    fuzzy conjunction is min; product and friends are t-norms too.
    let color = Score::clamped(0.8);
    let shape = Score::clamped(0.5);
    println!("min-conjunction  = {}", Min.combine(&[color, shape]));
    println!("product-conjunction = {}", Product.combine(&[color, shape]));

    // 3. Care twice as much about color? The Fagin–Wimmers formula
    //    weights any rule (§5).
    let theta = Weighting::from_ratios(&[2.0, 1.0]).expect("positive ratios");
    println!(
        "weighted min (2:1) = {}",
        weighted_combine(&Min, &theta, &[color, shape])
    );

    // 4. Subsystems expose sorted + random access; Fagin's algorithm A₀
    //    finds the top k while touching a vanishing fraction of the
    //    database (Theorem 4.1: O(√(kN)) for two conjuncts).
    let n = 50_000;
    let mut sources = fmdb_middleware::workload::independent_uniform(n, 2, 42);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    let top = FaginsAlgorithm
        .top_k(&mut refs, &Min, 5)
        .expect("valid query");
    println!("\ntop-5 of a {n}-object conjunction:");
    for answer in &top.answers {
        println!("  object {:>6}  grade {}", answer.id, answer.grade);
    }
    println!("cost: {} (naive would pay {})", top.stats, 2 * n);
}
