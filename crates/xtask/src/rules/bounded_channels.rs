//! Rule `bounded-channels` (L3): the middleware crate must not create
//! unbounded `mpsc::channel()`s.
//!
//! The engine's prefetch workers produce batches faster than a slow
//! consumer drains them; an unbounded channel turns that imbalance
//! into unbounded memory growth. `mpsc::sync_channel(bound)` applies
//! backpressure instead. The rule is scoped to `crates/middleware`
//! because that is where worker pipelines live; other crates don't
//! spawn producer threads.
//!
//! Three lexical shapes are flagged:
//!
//! * a call `mpsc::channel(` (any path prefix before `mpsc`);
//! * importing the constructor: `use std::sync::mpsc::channel` (which
//!   would let later bare `channel()` calls evade the first pattern);
//! * importing it through a brace group:
//!   `use std::sync::mpsc::{channel, …}` — the shard/prefetch worker
//!   pipelines import `sync_channel` this way, and a `channel` slipped
//!   into the same group must not evade the rule.

use crate::diagnostics::Diagnostic;
use crate::workspace::{FileClass, SourceFile};

const RULE: &str = "bounded-channels";

/// Checks one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.class != FileClass::Lib || file.crate_dir != "middleware" {
        return Vec::new();
    }
    let code = &file.code;
    let mut diags = Vec::new();
    for (i, token) in code.iter().enumerate() {
        if token.text != "mpsc" {
            continue;
        }
        if file.in_test_region(token.line) {
            continue;
        }
        if !code.get(i + 1).map(|t| t.text == "::").unwrap_or(false) {
            continue;
        }
        // `mpsc :: { …, channel, … }` — a brace-group import.
        if code.get(i + 2).map(|t| t.text == "{").unwrap_or(false) {
            let in_use = code[..i].iter().rev().take(8).any(|t| t.text == "use");
            let mut j = i + 3;
            while let Some(t) = code.get(j) {
                if t.text == "}" {
                    break;
                }
                // A direct member named `channel`: preceded by `{`/`,`
                // (not a nested path segment like `channel::…`, which
                // cannot occur under `mpsc::`) and followed by
                // `,`/`}`/`as`.
                let next = code.get(j + 1).map(|t| t.text.as_str());
                if in_use && t.text == "channel" && matches!(next, Some("," | "}" | "as")) {
                    diags.push(
                        Diagnostic::new(
                            RULE,
                            &file.rel_path,
                            t.line,
                            t.col,
                            "importing unbounded `mpsc::channel` (brace group) in middleware",
                        )
                        .with_help(
                            "use `mpsc::sync_channel(bound)` for backpressure, or add \
                             `// lint:allow(bounded-channels): <why unbounded is safe here>`",
                        ),
                    );
                }
                j += 1;
            }
            continue;
        }
        // `mpsc :: channel` …
        if !code
            .get(i + 2)
            .map(|t| t.text == "channel")
            .unwrap_or(false)
        {
            continue;
        }
        // Skip an optional turbofish (`channel::<T>()`).
        let mut j = i + 3;
        if code.get(j).map(|t| t.text == "::").unwrap_or(false)
            && code.get(j + 1).map(|t| t.text == "<").unwrap_or(false)
        {
            let mut depth = 0isize;
            j += 1;
            while let Some(t) = code.get(j) {
                match t.text.as_str() {
                    "<" | "<<" => depth += if t.text == "<<" { 2 } else { 1 },
                    ">" | ">>" => {
                        depth -= if t.text == ">>" { 2 } else { 1 };
                        if depth <= 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let after = code.get(j).map(|t| t.text.as_str());
        // … either called directly, or named by a `use` import.
        let is_call = after == Some("(");
        let is_import = matches!(after, Some(";" | ",") | None)
            && code[..i].iter().rev().take(8).any(|t| t.text == "use");
        if is_call || is_import {
            let what = if is_call {
                "unbounded `mpsc::channel()`"
            } else {
                "importing unbounded `mpsc::channel`"
            };
            diags.push(
                Diagnostic::new(
                    RULE,
                    &file.rel_path,
                    token.line,
                    token.col,
                    format!("{what} in middleware"),
                )
                .with_help(
                    "use `mpsc::sync_channel(bound)` for backpressure, or add \
                     `// lint:allow(bounded-channels): <why unbounded is safe here>`",
                ),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::analyze;
    use std::path::PathBuf;

    fn check_src(path: &str, src: &str) -> Vec<Diagnostic> {
        let file = analyze(PathBuf::from(path), src);
        check(&file)
            .into_iter()
            .filter(|d| !file.allowed(d.rule, d.line))
            .collect()
    }

    #[test]
    fn flags_unbounded_channel_calls() {
        let src = "use std::sync::mpsc;\nfn f() {\n    let (tx, rx) = mpsc::channel::<u32>();\n    let _ = (tx, rx);\n}\n";
        let diags = check_src("crates/middleware/src/engine.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn flags_importing_the_constructor() {
        let src = "use std::sync::mpsc::channel;\n";
        assert_eq!(check_src("crates/middleware/src/engine.rs", src).len(), 1);
    }

    #[test]
    fn flags_brace_group_imports() {
        let src = "use std::sync::mpsc::{channel, Receiver};\n";
        let diags = check_src("crates/middleware/src/sharded.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("brace group"));
        // Renamed imports don't evade either.
        let src = "use std::sync::mpsc::{channel as ch};\n";
        assert_eq!(check_src("crates/middleware/src/sharded.rs", src).len(), 1);
        // Trailing position in the group.
        let src = "use std::sync::mpsc::{Receiver, channel};\n";
        assert_eq!(check_src("crates/middleware/src/sharded.rs", src).len(), 1);
    }

    #[test]
    fn brace_group_with_only_sync_channel_is_fine() {
        let src = "use std::sync::mpsc::{sync_channel, Receiver, SyncSender};\n";
        assert!(check_src("crates/middleware/src/engine.rs", src).is_empty());
    }

    #[test]
    fn allows_sync_channel() {
        let src = "use std::sync::mpsc;\nfn f() {\n    let (tx, rx) = mpsc::sync_channel::<u32>(4);\n    let _ = (tx, rx);\n}\n";
        assert!(check_src("crates/middleware/src/engine.rs", src).is_empty());
    }

    #[test]
    fn scoped_to_middleware_lib_code() {
        let src = "fn f() { let _ = std::sync::mpsc::channel::<u32>(); }\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
        assert!(check_src("crates/middleware/tests/t.rs", src).is_empty());
    }

    #[test]
    fn honors_suppressions() {
        let src = "fn f() {\n    // lint:allow(bounded-channels): producer is strictly bounded by k batches\n    let _ = std::sync::mpsc::channel::<u32>();\n}\n";
        assert!(check_src("crates/middleware/src/engine.rs", src).is_empty());
    }
}
