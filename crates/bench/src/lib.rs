//! # fmdb-bench — experiment harness
//!
//! Regenerates every quantitative claim of the paper (EXPERIMENTS.md):
//! run `cargo run --release -p fmdb-bench --bin e00_run_all`, or an
//! individual `e01_fa_scaling` … `e19_no_random_access` binary. `--quick`
//! (or `FMDB_QUICK=1`) shrinks the sweeps for smoke runs; `FMDB_JSON=1`
//! additionally emits machine-readable reports on stderr.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runners;
