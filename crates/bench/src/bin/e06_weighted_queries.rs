//! Standalone runner for experiment `e06_weighted_queries`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e06_weighted_queries::run(&cfg).print();
}
