//! Criterion benchmarks: end-to-end top-k evaluation — algorithm A₀
//! and friends vs the naive scan (wall-clock companion to experiment
//! E1's access-count tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::naive::Naive;
use fmdb_middleware::algorithms::pruned_fa::PrunedFa;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::workload::independent_uniform;

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    group.sample_size(20);
    let n = 16_384;
    let k = 10;
    let pruned = PrunedFa::default();
    let algos: Vec<(&str, &dyn TopKAlgorithm)> = vec![
        ("a0", &FaginsAlgorithm),
        ("pruned_a0", &pruned),
        ("ta", &ThresholdAlgorithm),
        ("naive", &Naive),
    ];
    for (name, algo) in algos {
        group.bench_function(BenchmarkId::new(name, n), |b| {
            b.iter_batched(
                || independent_uniform(n, 2, 7),
                |mut sources| {
                    let mut refs: Vec<&mut dyn GradedSource> = sources
                        .iter_mut()
                        .map(|s| s as &mut dyn GradedSource)
                        .collect();
                    algo.top_k(&mut refs, &Min, k).expect("valid run")
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
