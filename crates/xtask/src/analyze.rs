//! The **fmdb-analyze** driver: parses every workspace file into an
//! item tree ([`crate::parser`]), builds the cross-file
//! [`SymbolTable`], runs the five concurrency/invariant rules, and
//! applies the suppression policy.
//!
//! Pipeline: lexer → item tree → symbol table → rule passes →
//! policy gate. The split mirrors `rules::run_all` for the token-level
//! linter: rules produce *raw* findings (already scoped to library
//! code outside `#[cfg(test)]`), and the driver drops findings covered
//! by a justified `lint:allow` / `ordering(...)` marker — so the
//! policy lives in one place and `cargo xtask suppressions` can reuse
//! the raw stream for stale-marker detection.
//!
//! Parse failures are findings too (`parse-error`): the analyzer
//! refuses to silently skip code it cannot model, and the workspace
//! integration test keeps the grammar subset complete by parsing every
//! first-party file.

use crate::diagnostics::Diagnostic;
use crate::parser::{parse, FileTree};
use crate::rules::{atomic_ordering, detached_thread, ignored_result, lock_order, unchecked_arith};
use crate::symbols::SymbolTable;
use crate::workspace::{SourceFile, Workspace, PARSE_RULE};

/// One workspace file plus its parsed item tree.
#[derive(Debug)]
pub struct AnalyzedFile<'ws> {
    /// The lexed/annotated file from workspace discovery.
    pub source: &'ws SourceFile,
    /// The parsed item tree.
    pub tree: FileTree,
}

/// The fully parsed workspace the analyze rules run over.
#[derive(Debug)]
pub struct AnalyzedWorkspace<'ws> {
    /// Every file with its item tree, in walk order.
    pub files: Vec<AnalyzedFile<'ws>>,
    /// Cross-file `fn name → definitions` table.
    pub symbols: SymbolTable,
}

/// Parses every file and links the symbol table.
pub fn parse_workspace(ws: &Workspace) -> AnalyzedWorkspace<'_> {
    let files: Vec<AnalyzedFile<'_>> = ws
        .files
        .iter()
        .map(|source| AnalyzedFile {
            source,
            tree: parse(&source.code),
        })
        .collect();
    let symbols = SymbolTable::build(files.iter().map(|f| (&f.source.rel_path, &f.tree)));
    AnalyzedWorkspace { files, symbols }
}

/// Raw findings: parse errors plus every rule's diagnostics, scoped
/// (library code, outside `#[cfg(test)]`) but **not** yet filtered by
/// `lint:allow` markers. `cargo xtask suppressions` diffs markers
/// against this stream.
pub fn raw_diagnostics(aws: &AnalyzedWorkspace<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for af in &aws.files {
        for e in &af.tree.errors {
            diags.push(
                Diagnostic::new(
                    PARSE_RULE,
                    &af.source.rel_path,
                    e.line,
                    e.col,
                    format!("analyzer could not model this construct: {}", e.message),
                )
                .with_help(
                    "the analyze parser must cover every first-party construct; \
                     extend crates/xtask/src/parser.rs",
                ),
            );
        }
        let mut raw = Vec::new();
        raw.extend(atomic_ordering::check(af));
        raw.extend(detached_thread::check(af));
        raw.extend(ignored_result::check(af, &aws.symbols));
        raw.extend(unchecked_arith::check(af));
        diags.extend(
            raw.into_iter()
                .filter(|d| !af.source.in_test_region(d.line)),
        );
    }
    diags.extend(lock_order::check(aws));
    diags
}

/// Runs the full analyze pass over a workspace: raw findings filtered
/// through the suppression policy, plus malformed-marker findings,
/// sorted for stable output.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let aws = parse_workspace(ws);
    let mut diags: Vec<Diagnostic> = raw_diagnostics(&aws)
        .into_iter()
        .filter(|d| {
            let allowed = ws
                .files
                .iter()
                .find(|f| f.rel_path.display().to_string() == d.path)
                .is_some_and(|f| f.allowed(d.rule, d.line));
            // Parse errors are never suppressible: an unmodeled
            // construct starves every downstream rule of facts.
            !allowed || d.rule == PARSE_RULE
        })
        .collect();
    for file in &ws.files {
        diags.extend(file.suppression_diags.iter().cloned());
    }
    diags.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
    });
    diags
}
