//! Synthetic multimedia objects.
//!
//! The paper's evaluation context (QBIC over IBM's image collections)
//! is proprietary; per the reproduction plan we substitute a generator
//! whose knobs control exactly the properties the algorithms are
//! sensitive to: the grade/feature *distributions* and the
//! *correlation* between attributes (Theorem 4.1 assumes independent
//! conjuncts; §6's hard case is extreme dependence).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::color::{ColorHistogram, ColorSpace, Rgb};
use crate::shape::{Point, Polygon};
use crate::texture::{TextureDescriptor, TexturePatch};

/// The shape families the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeFamily {
    /// Near-circular ellipses ("round", the paper's example predicate).
    Round,
    /// Rectangles with assorted aspect ratios.
    Boxy,
    /// Stars with sharp spikes.
    Spiky,
}

impl ShapeFamily {
    /// All families.
    pub const ALL: [ShapeFamily; 3] = [ShapeFamily::Round, ShapeFamily::Boxy, ShapeFamily::Spiky];
}

/// One synthetic "image": a color histogram plus a shape outline.
#[derive(Debug, Clone)]
pub struct MediaObject {
    /// Object id, dense from 0.
    pub id: u64,
    /// The color histogram over the generating [`ColorSpace`].
    pub histogram: ColorHistogram,
    /// The dominant color the histogram was sampled around.
    pub dominant: Rgb,
    /// The shape outline.
    pub shape: Polygon,
    /// The family the shape was drawn from.
    pub family: ShapeFamily,
    /// Tamura-style texture features of the object's surface patch.
    pub texture: TextureDescriptor,
}

/// Configuration for [`SyntheticDb::generate`].
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of objects.
    pub count: usize,
    /// Bins per RGB channel (4 ⇒ the paper's typical k = 64).
    pub bins_per_channel: usize,
    /// Pixel samples drawn per histogram.
    pub samples_per_object: usize,
    /// Channel noise around the dominant color.
    pub color_noise: f64,
    /// Correlation in `[0, 1]` between color redness and shape
    /// roundness: 0 = independent attributes, 1 = red objects are
    /// always round (the dependence that breaks Theorem 4.1's
    /// assumption).
    pub color_shape_correlation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            count: 100,
            bins_per_channel: 4,
            samples_per_object: 200,
            color_noise: 0.12,
            color_shape_correlation: 0.0,
            seed: 42,
        }
    }
}

/// A generated database of [`MediaObject`]s plus its color space.
#[derive(Debug, Clone)]
pub struct SyntheticDb {
    /// The shared color space.
    pub space: ColorSpace,
    /// The objects, ids dense from 0.
    pub objects: Vec<MediaObject>,
}

impl SyntheticDb {
    /// Generates a database. Deterministic in `config.seed`.
    ///
    /// # Panics
    /// Panics if `config.color_shape_correlation` is outside `[0, 1]`
    /// or `count`/`bins_per_channel`/`samples_per_object` is zero
    /// (configuration bugs, not data).
    pub fn generate(config: &SynthConfig) -> SyntheticDb {
        assert!(config.count > 0, "count must be positive");
        assert!(config.samples_per_object > 0, "samples must be positive");
        assert!(
            (0.0..=1.0).contains(&config.color_shape_correlation),
            "correlation must lie in [0, 1]"
        );
        let space = ColorSpace::rgb_grid(config.bins_per_channel)
            // lint:allow(no-panic): SynthConfig::validate rejected zero bins before generation starts
            .expect("bins_per_channel must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut objects = Vec::with_capacity(config.count);
        for id in 0..config.count as u64 {
            let dominant = Rgb::new(rng.gen(), rng.gen(), rng.gen());
            let colors: Vec<Rgb> = (0..config.samples_per_object)
                .map(|_| {
                    let n = config.color_noise;
                    Rgb::new(
                        dominant.r + rng.gen_range(-n..=n),
                        dominant.g + rng.gen_range(-n..=n),
                        dominant.b + rng.gen_range(-n..=n),
                    )
                })
                .collect();
            let histogram =
                // lint:allow(no-panic): the sample loop above always pushes samples_per_object >= 1 colors
                ColorHistogram::from_colors(&space, &colors).expect("samples are non-empty");

            // Redness of the dominant color drives (with probability
            // `correlation`) the shape family toward Round.
            let redness = dominant.r * (1.0 - dominant.g) * (1.0 - dominant.b);
            let family = if rng.gen::<f64>() < config.color_shape_correlation {
                if redness > 0.25 {
                    ShapeFamily::Round
                } else {
                    ShapeFamily::Spiky
                }
            } else {
                ShapeFamily::ALL[rng.gen_range(0..ShapeFamily::ALL.len())]
            };
            let shape = sample_shape(family, &mut rng);
            let texture = sample_texture(&mut rng, config.seed.wrapping_add(id));
            objects.push(MediaObject {
                id,
                histogram,
                dominant,
                shape,
                family,
                texture,
            });
        }
        SyntheticDb { space, objects }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

fn sample_shape(family: ShapeFamily, rng: &mut StdRng) -> Polygon {
    let cx = rng.gen_range(-5.0..5.0);
    let cy = rng.gen_range(-5.0..5.0);
    match family {
        ShapeFamily::Round => {
            let a = rng.gen_range(0.8..1.6);
            let b = a * rng.gen_range(0.85..1.0);
            // lint:allow(no-panic): radii are drawn from strictly positive ranges
            Polygon::ellipse(cx, cy, a, b, 40).expect("ellipse parameters are valid")
        }
        ShapeFamily::Boxy => {
            let w = rng.gen_range(0.8..3.0);
            let h = rng.gen_range(0.5..1.5);
            // lint:allow(no-panic): extents are drawn from strictly positive ranges
            Polygon::rectangle(cx, cy, w, h).expect("rectangle parameters are valid")
        }
        ShapeFamily::Spiky => {
            let spikes = rng.gen_range(5..9);
            let outer = rng.gen_range(1.0..1.8);
            let inner = outer * rng.gen_range(0.25..0.45);
            // lint:allow(no-panic): spike count and radii are drawn from strictly positive ranges
            Polygon::star(spikes, outer, inner, cx, cy).expect("star parameters are valid")
        }
    }
}

/// Draws a random surface texture: a grating with random frequency,
/// orientation and contrast, plus mild noise.
fn sample_texture(rng: &mut StdRng, seed: u64) -> TextureDescriptor {
    let frequency = rng.gen_range(1.5..14.0);
    let orientation = rng.gen_range(0.0..std::f64::consts::PI);
    let contrast = rng.gen_range(0.1..1.0);
    let noise = rng.gen_range(0.0..0.3);
    let patch = TexturePatch::grating(32, frequency, orientation, contrast, noise, seed)
        // lint:allow(no-panic): frequency/contrast/noise are drawn from ranges inside the accepted domain
        .expect("generator parameters are valid");
    TextureDescriptor::of(&patch)
}

/// A jittered copy of a polygon — a "similar shape" for recall tests.
pub fn jitter_shape(poly: &Polygon, magnitude: f64, seed: u64) -> Polygon {
    let mut rng = StdRng::seed_from_u64(seed);
    let vertices = poly
        .vertices()
        .iter()
        .map(|p| {
            Point::new(
                p.x + rng.gen_range(-magnitude..=magnitude),
                p.y + rng.gen_range(-magnitude..=magnitude),
            )
        })
        .collect();
    Polygon::new(vertices).unwrap_or_else(|_| poly.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig {
            count: 10,
            ..SynthConfig::default()
        };
        let a = SyntheticDb::generate(&cfg);
        let b = SyntheticDb::generate(&cfg);
        assert_eq!(a.len(), 10);
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.histogram.bins(), y.histogram.bins());
            assert_eq!(x.family, y.family);
        }
    }

    #[test]
    fn ids_are_dense() {
        let db = SyntheticDb::generate(&SynthConfig {
            count: 25,
            ..SynthConfig::default()
        });
        for (i, o) in db.objects.iter().enumerate() {
            assert_eq!(o.id, i as u64);
        }
    }

    #[test]
    fn histograms_are_normalized_over_the_space() {
        let db = SyntheticDb::generate(&SynthConfig {
            count: 5,
            ..SynthConfig::default()
        });
        for o in &db.objects {
            assert_eq!(o.histogram.k(), db.space.k());
            let total: f64 = o.histogram.bins().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correlation_knob_links_red_to_round() {
        let correlated = SyntheticDb::generate(&SynthConfig {
            count: 400,
            color_shape_correlation: 1.0,
            seed: 7,
            ..SynthConfig::default()
        });
        // Every clearly-red object must be round.
        for o in &correlated.objects {
            let redness = o.dominant.r * (1.0 - o.dominant.g) * (1.0 - o.dominant.b);
            if redness > 0.25 {
                assert_eq!(o.family, ShapeFamily::Round, "object {}", o.id);
            }
        }
    }

    #[test]
    fn uncorrelated_families_are_spread() {
        let db = SyntheticDb::generate(&SynthConfig {
            count: 300,
            color_shape_correlation: 0.0,
            seed: 3,
            ..SynthConfig::default()
        });
        for family in ShapeFamily::ALL {
            let n = db.objects.iter().filter(|o| o.family == family).count();
            assert!(n > 50, "{family:?} occurred only {n} times");
        }
    }

    #[test]
    fn textures_vary_across_objects() {
        let db = SyntheticDb::generate(&SynthConfig {
            count: 30,
            ..SynthConfig::default()
        });
        let first = db.objects[0].texture;
        assert!(
            db.objects.iter().any(|o| o.texture.distance(&first) > 0.1),
            "textures should not all collapse to one point"
        );
    }

    #[test]
    fn jittered_shapes_stay_closer_than_different_shapes() {
        use crate::shape::turning_distance;
        let hexagon = Polygon::regular(6, 1.0, 0.0, 0.0, 0.0).unwrap();
        let jittered = jitter_shape(&hexagon, 0.03, 9);
        let star = Polygon::star(6, 1.0, 0.35, 0.0, 0.0).unwrap();
        let d_jitter = turning_distance(&hexagon, &jittered, 64);
        let d_star = turning_distance(&hexagon, &star, 64);
        assert!(
            d_jitter < d_star,
            "jitter {d_jitter} should be below cross-shape {d_star}"
        );
    }

    #[test]
    fn jitter_preserves_vertex_count() {
        let p = Polygon::regular(6, 1.0, 0.0, 0.0, 0.0).unwrap();
        let j = jitter_shape(&p, 0.05, 1);
        assert_eq!(j.vertices().len(), 6);
        assert_ne!(j.vertices()[0], p.vertices()[0]);
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn invalid_correlation_panics() {
        let _ = SyntheticDb::generate(&SynthConfig {
            color_shape_correlation: 2.0,
            ..SynthConfig::default()
        });
    }
}
