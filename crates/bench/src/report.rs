//! Experiment reporting: aligned text tables, JSON dumps, the log-log
//! exponent fits used to check the paper's asymptotic claims, and the
//! machine-readable `BENCH_engine.json` perf-trajectory file.

use fmdb_middleware::stats::AccessStats;

/// One formatted table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch — experiment code bug.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A full experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("E1", …).
    pub id: String,
    /// Headline description.
    pub title: String,
    /// The paper claim being reproduced.
    pub claim: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Findings / caveats, printed after the tables.
    pub notes: Vec<String>,
    /// Named numeric results the perf trajectory tracks: folded into
    /// the experiment's `BENCH_engine.json` entry by `e00_run_all`.
    pub metrics: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, claim: &str) -> Report {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            claim: claim.to_owned(),
            tables: Vec::new(),
            notes: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Adds a table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Records a named numeric result for the machine-readable
    /// trajectory (`BENCH_engine.json`).
    pub fn metric(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Renders the whole report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# {} — {}\n\nPaper claim: {}\n\n",
            self.id, self.title, self.claim
        );
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("* {n}\n"));
        }
        out
    }

    /// Serializes the report as one JSON object (hand-rolled — the
    /// report shape is strings all the way down, so a serializer
    /// dependency is not warranted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json_field(&mut out, "id", &self.id);
        out.push(',');
        json_field(&mut out, "title", &self.title);
        out.push(',');
        json_field(&mut out, "claim", &self.claim);
        out.push_str(",\"tables\":[");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_field(&mut out, "title", &t.title);
            out.push_str(",\"headers\":");
            json_string_array(&mut out, &t.headers);
            out.push_str(",\"rows\":[");
            for (j, row) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json_string_array(&mut out, row);
            }
            out.push_str("]}");
        }
        out.push_str("],\"notes\":");
        json_string_array(&mut out, &self.notes);
        out.push_str(",\"metrics\":");
        json_metrics(&mut out, &self.metrics);
        out.push('}');
        out
    }

    /// Prints to stdout (and a JSON line to stderr when
    /// `FMDB_JSON=1`, for tooling).
    pub fn print(&self) {
        println!("{}", self.render());
        if std::env::var_os("FMDB_JSON").is_some() {
            eprintln!("{}", self.to_json());
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn json_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(&json_escape(value));
    out.push('"');
}

/// Emits a `{name: number}` object. Non-finite values serialize to
/// bare `NaN`/`inf` tokens — invalid JSON by design, so the
/// `check-bench` gate fails loudly instead of shipping a poisoned
/// trajectory.
fn json_metrics(out: &mut String, metrics: &[(String, f64)]) {
    out.push('{');
    for (i, (name, value)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(name));
        out.push_str("\":");
        out.push_str(&format!("{value:.6}"));
    }
    out.push('}');
}

fn json_string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(item));
        out.push('"');
    }
    out.push(']');
}

/// One experiment's measured cost for the machine-readable perf
/// trajectory (`BENCH_engine.json`, written by `e00_run_all`).
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Experiment id ("E1", …).
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// Wall-clock time of the whole experiment, milliseconds.
    pub wall_ms: f64,
    /// Accesses the experiment drove through the shared engine
    /// (difference of `Engine::access_totals` snapshots; experiments
    /// running private engines contribute zeros here but still report
    /// wall-clock).
    pub stats: AccessStats,
    /// The experiment's named numeric results ([`Report::metric`]) —
    /// e.g. E22's empirical optimality ratios.
    pub metrics: Vec<(String, f64)>,
}

/// Serializes the suite's per-experiment wall-clock and access counts
/// as one JSON object — the `BENCH_engine.json` payload tracked across
/// PRs. `quick` records whether the suite ran in quick mode, so
/// trajectories only compare like with like.
pub fn bench_engine_json(entries: &[BenchEntry], quick: bool) -> String {
    let mut out = String::from("{\"schema\":\"fmdb-bench-engine/v1\",\"quick\":");
    out.push_str(if quick { "true" } else { "false" });
    out.push_str(",\"experiments\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json_field(&mut out, "id", &e.id);
        out.push(',');
        json_field(&mut out, "title", &e.title);
        out.push_str(&format!(
            ",\"wall_ms\":{:.3},\"sorted\":{},\"random\":{},\"cache_hits\":{},\"cache_misses\":{},\"worker_spawns\":{},\"page_reads\":{},\"page_hits\":{},\"page_evictions\":{},\"pages_skipped\":{},\"blocks_skipped\":{}",
            e.wall_ms,
            e.stats.sorted,
            e.stats.random,
            e.stats.cache_hits,
            e.stats.cache_misses,
            e.stats.worker_spawns,
            e.stats.page_reads,
            e.stats.page_hits,
            e.stats.page_evictions,
            e.stats.pages_skipped,
            e.stats.blocks_skipped,
        ));
        out.push_str(",\"metrics\":");
        json_metrics(&mut out, &e.metrics);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Fits `y = c·x^e` by least squares on (ln x, ln y); returns the
/// exponent `e`. Pairs with non-positive coordinates are skipped.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = logs.len() as f64;
    if logs.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return f64::NAN;
    }
    (n * sxy - sx * sy) / denom
}

/// Formats a float with 3 significant-ish decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an integer-valued quantity.
pub fn int(v: u64) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "cost"]);
        t.row(vec!["10".into(), "4".into()]);
        t.row(vec!["10000".into(), "400".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| 10000 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn exponent_fit_recovers_powers() {
        let sqrt_points: Vec<(f64, f64)> = (1..=20)
            .map(|i| (i as f64, (i as f64).sqrt() * 3.0))
            .collect();
        assert!((fit_exponent(&sqrt_points) - 0.5).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, i as f64 * 7.0)).collect();
        assert!((fit_exponent(&linear) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_fit_edge_cases() {
        assert!(fit_exponent(&[]).is_nan());
        assert!(fit_exponent(&[(1.0, 1.0)]).is_nan());
        assert!(fit_exponent(&[(0.0, 5.0), (-1.0, 2.0)]).is_nan());
    }

    #[test]
    fn report_serializes_to_json() {
        let mut r = Report::new("E0", "demo \"quoted\"", "claim\nwith newline");
        let mut t = Table::new("t", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        r.table(t);
        r.note("note");
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains(r#""id":"E0""#));
        assert!(j.contains(r#"demo \"quoted\""#));
        assert!(j.contains(r#"claim\nwith newline"#));
        assert!(j.contains(r#""rows":[["1","2"]]"#));
        assert!(j.contains(r#""notes":["note"]"#));
    }

    #[test]
    fn bench_engine_json_is_well_formed() {
        let entries = vec![
            BenchEntry {
                id: "E1".into(),
                title: "FA \"scaling\"".into(),
                wall_ms: 12.5,
                stats: AccessStats {
                    sorted: 100,
                    random: 40,
                    cache_hits: 3,
                    cache_misses: 37,
                    worker_spawns: 8,
                    page_reads: 12,
                    page_hits: 5,
                    page_evictions: 2,
                    pages_skipped: 6,
                    blocks_skipped: 9,
                },
                metrics: vec![("opt_ratio_ta".to_owned(), 1.25)],
            },
            BenchEntry {
                id: "E21".into(),
                title: "sharding".into(),
                wall_ms: 0.0,
                stats: AccessStats::ZERO,
                metrics: Vec::new(),
            },
        ];
        let j = bench_engine_json(&entries, true);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"schema\":\"fmdb-bench-engine/v1\""));
        assert!(j.contains("\"quick\":true"));
        assert!(j.contains("\"id\":\"E1\""));
        assert!(j.contains(r#"FA \"scaling\""#));
        assert!(j.contains("\"wall_ms\":12.500"));
        assert!(j.contains("\"worker_spawns\":8"));
        assert!(j.contains("\"page_reads\":12"));
        assert!(j.contains("\"page_hits\":5"));
        assert!(j.contains("\"page_evictions\":2"));
        assert!(j.contains("\"pages_skipped\":6"));
        assert!(j.contains("\"blocks_skipped\":9"));
        assert!(j.contains("\"metrics\":{\"opt_ratio_ta\":1.250000}"));
        assert!(j.contains("\"metrics\":{}"));
        assert!(j.contains("\"id\":\"E21\""));
        let empty = bench_engine_json(&[], false);
        assert!(empty.contains("\"quick\":false"));
        assert!(empty.contains("\"experiments\":[]"));
    }

    #[test]
    fn report_renders_sections() {
        let mut r = Report::new("E0", "demo", "claim text");
        r.table(Table::new("t", &["x"]));
        r.note("a note");
        let s = r.render();
        assert!(s.contains("# E0"));
        assert!(s.contains("claim text"));
        assert!(s.contains("* a note"));
    }
}
