//! Property-based tests: every top-k algorithm returns a *valid* top-k
//! (per the paper's definition — exact grades, nothing better left
//! behind) on arbitrary randomly-shaped instances.

use proptest::prelude::*;

use fuzzymm::core::scoring::means::ArithmeticMean;
use fuzzymm::core::scoring::tnorms::{Lukasiewicz, Product};
use fuzzymm::middleware::algorithms::cg_filter::CgFilter;
use fuzzymm::middleware::oracle::verify_top_k;
use fuzzymm::prelude::*;

/// Strategy: m grade lists over a shared dense universe.
fn grade_lists(max_n: usize, max_m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..=max_m, 1usize..=max_n).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(0.0f64..=1.0, n..=n), m..=m)
    })
}

fn to_sources(lists: &[Vec<f64>]) -> Vec<VecSource> {
    lists
        .iter()
        .enumerate()
        .map(|(i, grades)| {
            let scores: Vec<Score> = grades.iter().map(|&g| Score::clamped(g)).collect();
            VecSource::from_dense(format!("list-{i}"), &scores)
        })
        .collect()
}

fn check_valid(
    algo: &dyn TopKAlgorithm,
    lists: &[Vec<f64>],
    scoring: &dyn ScoringFunction,
    k: usize,
) {
    let mut sources = to_sources(lists);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    let result = algo
        .top_k(&mut refs, scoring, k)
        .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
    let mut refs2: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    verify_top_k(&mut refs2, scoring, &result.answers, k)
        .unwrap_or_else(|v| panic!("{} returned an invalid top-k: {v}", algo.name()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fa_is_always_valid_under_min(lists in grade_lists(60, 4), k in 1usize..=8) {
        check_valid(&FaginsAlgorithm, &lists, &Min, k);
    }

    #[test]
    fn fa_is_always_valid_under_product(lists in grade_lists(40, 3), k in 1usize..=5) {
        check_valid(&FaginsAlgorithm, &lists, &Product, k);
    }

    #[test]
    fn pruned_fa_is_always_valid(lists in grade_lists(60, 4), k in 1usize..=8) {
        check_valid(&PrunedFa::default(), &lists, &Min, k);
        check_valid(&PrunedFa::default(), &lists, &ArithmeticMean, k);
    }

    #[test]
    fn ta_is_always_valid(lists in grade_lists(60, 4), k in 1usize..=8) {
        check_valid(&ThresholdAlgorithm, &lists, &Min, k);
        check_valid(&ThresholdAlgorithm, &lists, &ArithmeticMean, k);
    }

    #[test]
    fn naive_is_always_valid(lists in grade_lists(60, 4), k in 1usize..=8) {
        check_valid(&Naive, &lists, &Lukasiewicz, k);
    }

    #[test]
    fn cg_filter_is_always_valid_for_tnorms(lists in grade_lists(40, 3), k in 1usize..=5) {
        check_valid(&CgFilter::default(), &lists, &Min, k);
        check_valid(&CgFilter::default(), &lists, &Product, k);
    }

    #[test]
    fn fa_cost_never_exceeds_naive(lists in grade_lists(60, 3), k in 1usize..=5) {
        let m = lists.len() as u64;
        let n = lists[0].len() as u64;
        let mut sources = to_sources(&lists);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let fa = FaginsAlgorithm.top_k(&mut refs, &Min, k).expect("valid run");
        // A0's sorted phase can touch at most every list fully, and the
        // random phase at most fills every hole: cost ≤ 2·m·N.
        prop_assert!(fa.stats.database_access_cost() <= 2 * m * n);
    }

    #[test]
    fn pruned_fa_never_costs_more_than_fa(lists in grade_lists(60, 3), k in 1usize..=5) {
        let mut s1 = to_sources(&lists);
        let mut r1: Vec<&mut dyn GradedSource> =
            s1.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let fa = FaginsAlgorithm.top_k(&mut r1, &Min, k).expect("valid run");
        let mut s2 = to_sources(&lists);
        let mut r2: Vec<&mut dyn GradedSource> =
            s2.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let pruned = PrunedFa::default().top_k(&mut r2, &Min, k).expect("valid run");
        prop_assert_eq!(pruned.stats.sorted, fa.stats.sorted);
        prop_assert!(pruned.stats.random <= fa.stats.random);
    }

    #[test]
    fn max_merge_matches_naive_grades(lists in grade_lists(60, 4), k in 1usize..=8) {
        let scoring = ConormScoring(fuzzymm::core::scoring::conorms::Max);
        let mut s1 = to_sources(&lists);
        let mut r1: Vec<&mut dyn GradedSource> =
            s1.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let merge = MaxMerge.top_k(&mut r1, &scoring, k).expect("valid run");
        let mut r2: Vec<&mut dyn GradedSource> =
            s1.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        verify_top_k(&mut r2, &scoring, &merge.answers, k)
            .unwrap_or_else(|v| panic!("max-merge invalid: {v}"));
        // And its cost promise: at most m·k sorted accesses.
        prop_assert!(merge.stats.sorted <= (lists.len() * k) as u64);
        prop_assert_eq!(merge.stats.random, 0);
    }

    #[test]
    fn fa_session_batches_are_disjoint_and_ordered(
        lists in grade_lists(60, 2),
        k in 1usize..=4,
    ) {
        let mut sources = to_sources(&lists);
        let refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let mut session = FaSession::new(refs, &Min).expect("valid session");
        let first = session.next_k(k).expect("valid batch");
        let second = session.next_k(k).expect("valid batch");
        for a in &first.answers {
            prop_assert!(!second.answers.iter().any(|b| b.id == a.id));
        }
        if let (Some(last), Some(next)) = (first.answers.last(), second.answers.first()) {
            prop_assert!(last.grade >= next.grade);
        }
    }
}
