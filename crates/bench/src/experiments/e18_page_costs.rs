//! E18 — measured paged-store I/O (§6's open problem: "to give a
//! more realistic cost measure than the definition in \[Fa96\] for the
//! database access cost. This is especially important in the presence
//! of query optimizers.").
//!
//! Earlier revisions *simulated* page costs by wrapping in-memory
//! sources in a paging adapter. This experiment measures the real
//! thing: each source is persisted to a [`fmdb_middleware::store`]
//! file (checksummed fixed-size pages, sorted run + random table) and
//! queried through its buffer pool. We report cold-pool vs warm-pool
//! wall-clock and page I/O across a page-size sweep, and compare a
//! warm paged run against the same query served from memory — the
//! store's claim is that a warm pool keeps out-of-core sources within
//! a small constant factor of in-memory speed.

use std::path::{Path, PathBuf};
use std::time::Instant;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::source::{GradedSource, VecSource};
use fmdb_middleware::stats::PageIoStats;
use fmdb_middleware::store::{build_store_from_source, BuildConfig, PagedStore, StoreOptions};
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

/// Scratch directory for store files, inside the workspace `target/`
/// dir so benchmarks never write outside the repository.
fn store_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-stores");
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    dir
}

/// Persists every source to its own store file and opens the stores.
fn persist(sources: &mut [VecSource], page_size: usize, pool_pages: usize) -> Vec<PagedStore> {
    sources
        .iter_mut()
        .enumerate()
        .map(|(i, s)| {
            let path = store_dir().join(format!("e18-p{page_size}-s{i}.fmdb"));
            build_store_from_source(&path, s, &BuildConfig::with_page_size(page_size))
                .expect("build store");
            PagedStore::open(
                &path,
                StoreOptions {
                    pool_pages: (pool_pages > 0).then_some(pool_pages),
                    readahead: Some(4),
                },
            )
            .expect("open store")
        })
        .collect()
}

/// Sums the pool counters across stores.
fn pool_totals(stores: &[PagedStore]) -> PageIoStats {
    stores
        .iter()
        .fold(PageIoStats::ZERO, |acc, s| acc + s.page_io())
}

/// Runs TA over fresh cursors of the given stores, returning
/// `(wall_ms, page I/O charged by this run, answers)`.
fn ta_over_stores(
    stores: &[PagedStore],
    k: usize,
) -> (f64, PageIoStats, Vec<fmdb_core::score::ScoredObject<u64>>) {
    let before = pool_totals(stores);
    let mut cursors: Vec<_> = stores.iter().map(|s| s.source()).collect();
    let mut refs: Vec<&mut dyn GradedSource> = cursors
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    let start = Instant::now();
    let result = ThresholdAlgorithm
        .top_k(&mut refs, &Min, k)
        .expect("valid run");
    let wall = start.elapsed().as_secs_f64() * 1e3;
    (wall, pool_totals(stores) - before, result.answers)
}

/// Drains every store's sorted run through fresh cursors; returns
/// wall-clock ms. `black_box` keeps the loop from being folded away.
fn drain_stores(stores: &[PagedStore]) -> f64 {
    let start = Instant::now();
    for store in stores {
        let mut src = store.source();
        while let Some(pair) = src.sorted_next() {
            std::hint::black_box(pair);
        }
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E18",
        "paged store I/O: cold vs warm buffer pool, measured",
        "§6: \"give a more realistic cost measure than the definition in [Fa96]\" — the \
         paged store makes the cost physical: cold queries pay page reads, warm queries \
         hit the buffer pool, and a warm top-k runs within a small factor of the \
         in-memory engine",
    );
    let n = cfg.pick(1 << 15, 1 << 11);
    let m = 3usize;
    let k = 50usize;
    // Enough frames that one store's working set fits — warm runs
    // should be all pool hits.
    let pool_pages = cfg.pick(1024, 256);

    let mut sources = independent_uniform(n, m, 7);

    // Reference answers from memory, for the equivalence check below.
    let (mem_answers, mem_ta_ms) = {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let start = Instant::now();
        let result = ThresholdAlgorithm
            .top_k(&mut refs, &Min, k)
            .expect("valid run");
        (result.answers, start.elapsed().as_secs_f64() * 1e3)
    };
    for s in &mut sources {
        s.rewind();
    }

    let mut t = Table::new(
        format!("TA over the paged store, N = {n}, m = {m}, k = {k}, pool = {pool_pages} pages"),
        &[
            "page size",
            "cold ms",
            "cold page reads",
            "warm ms",
            "warm hit rate",
            "readahead loads",
        ],
    );

    // Defaults reported as the experiment's metrics come from the
    // 4096-byte row.
    let mut cold_wall_ms = 0.0;
    let mut warm_wall_ms = 0.0;
    let mut warm_hit_rate = 0.0;
    let mut cold_page_reads = 0u64;
    let mut default_stores: Option<Vec<PagedStore>> = None;

    for &page_size in &[512usize, 4096, 16384] {
        let stores = persist(&mut sources, page_size, pool_pages);
        let (cold_ms, cold_io, cold_answers) = ta_over_stores(&stores, k);
        assert_eq!(
            cold_answers, mem_answers,
            "paged TA must match in-memory TA bit for bit"
        );
        let (warm_ms, warm_io, warm_answers) = ta_over_stores(&stores, k);
        assert_eq!(warm_answers, mem_answers);
        let warm_total = warm_io.reads + warm_io.hits;
        let hit_rate = if warm_total == 0 {
            0.0
        } else {
            warm_io.hits as f64 / warm_total as f64
        };
        let readahead: u64 = stores.iter().map(|s| s.readahead_loads()).sum();
        t.row(vec![
            page_size.to_string(),
            f3(cold_ms),
            int(cold_io.reads),
            f3(warm_ms),
            f3(hit_rate),
            int(readahead),
        ]);
        for err in stores_errors(&stores) {
            report.note(format!("store error (should not happen): {err}"));
        }
        if page_size == 4096 {
            cold_wall_ms = cold_ms;
            warm_wall_ms = warm_ms;
            warm_hit_rate = hit_rate;
            cold_page_reads = cold_io.reads;
            default_stores = Some(stores);
        }
    }
    report.table(t);

    // Warm sorted drain vs the same drain from memory — the "in-memory
    // speed" claim. The pool is already warm from the TA runs above;
    // drain once more to be sure every sorted page is resident.
    let stores = default_stores.expect("4096 is in the sweep");
    drain_stores(&stores);
    let warm_scan_ms = drain_stores(&stores);
    let mem_scan_ms = {
        for s in &mut sources {
            s.rewind();
        }
        let start = Instant::now();
        for s in &mut sources {
            while let Some(pair) = s.sorted_next() {
                std::hint::black_box(pair);
            }
        }
        start.elapsed().as_secs_f64() * 1e3
    };
    // Guards against timer noise on tiny quick-mode runs.
    let warm_scan_vs_mem = if mem_scan_ms > 1e-3 {
        warm_scan_ms / mem_scan_ms
    } else {
        1.0
    };
    let warm_ta_vs_mem = if mem_ta_ms > 1e-3 {
        warm_wall_ms / mem_ta_ms
    } else {
        1.0
    };

    let mut s = Table::new(
        "warm paged vs in-memory (page size 4096)".to_string(),
        &[
            "warm scan ms",
            "mem scan ms",
            "scan ratio",
            "warm TA ms",
            "mem TA ms",
            "TA ratio",
        ],
    );
    s.row(vec![
        f3(warm_scan_ms),
        f3(mem_scan_ms),
        f3(warm_scan_vs_mem),
        f3(warm_wall_ms),
        f3(mem_ta_ms),
        f3(warm_ta_vs_mem),
    ]);
    report.table(s);

    report.metric("cold_wall_ms", cold_wall_ms);
    report.metric("warm_wall_ms", warm_wall_ms);
    report.metric("warm_hit_rate", warm_hit_rate);
    report.metric("cold_page_reads", cold_page_reads as f64);
    report.metric("warm_scan_vs_mem", warm_scan_vs_mem);
    report.metric("warm_ta_vs_mem", warm_ta_vs_mem);

    report.note(
        "cold queries pay one read per distinct page touched (sorted pages stream \
         sequentially with read-ahead; TA's random probes each fault a random-table \
         page); warm queries re-run with every frame resident and read nothing — the \
         flat access count of [Fa96] is identical in both runs, which is exactly the \
         mispricing §6 warns about.",
    );
    report.note(
        "larger pages shrink cold read counts for the sorted run (more entries per \
         read) but waste transfer on point probes; the page-size sweep shows the \
         trade directly, measured on the store rather than simulated.",
    );
    report.note(
        "answers, grades, and charged access counts from the paged run are asserted \
         bit-identical to the in-memory run — paging is physical telemetry, not a \
         semantic change (the paged_equivalence proptest suite proves this across \
         FA/TA/NRA/CA).",
    );
    report
}

/// Collects any parked runtime errors (expected: none).
fn stores_errors(stores: &[PagedStore]) -> Vec<String> {
    stores
        .iter()
        .filter_map(|s| s.take_error().map(|e| e.to_string()))
        .collect()
}
