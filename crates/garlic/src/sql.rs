//! A small SQL-ish surface syntax (extension; §6 notes queries "could
//! possibly be written in an SQL-like form [CB74, DD94], as is done in
//! \[WHTB98\]").
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query  := SELECT TOP <int> WHERE expr
//!           [USING ident] [WEIGHTS <num> (',' <num>)*]
//! expr   := conj (OR conj)*
//! conj   := unit (AND unit)*
//! unit   := NOT unit | '(' expr ')' | atom
//! atom   := ident '=' '<text>'      -- crisp equality
//!         | ident '~' '<text>'      -- similarity ("close to")
//! ```
//!
//! `USING <name>` replaces the top-level conjunction's scoring
//! function (`min`, `product`, `lukasiewicz`, `mean`, `geomean`) — the
//! paper's observation that systems may let users pick among "a fixed
//! set of legal (i.e., monotone) scoring functions" (§4.2). `WEIGHTS`
//! applies the Fagin–Wimmers weighting to the top-level conjunction,
//! with the (possibly `USING`-chosen) rule as the underlying `f` — the
//! slider semantics of §5. AND binds tighter than OR; default
//! combination semantics are the standard fuzzy rules (min/max/1−x).

use std::fmt;
use std::sync::Arc;

use fmdb_core::query::{Query, ScoringHandle, Target};
use fmdb_core::scoring::means::{ArithmeticMean, GeometricMean};
use fmdb_core::scoring::tnorms::{Lukasiewicz, Min, Product};
use fmdb_core::weights::{Weighting, WeightingError};

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Unexpected end of input.
    UnexpectedEnd,
    /// Unexpected token.
    Unexpected {
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
    },
    /// TOP count was not a positive integer.
    BadTopCount(String),
    /// Weight list invalid.
    BadWeights(WeightingError),
    /// WEIGHTS given but the expression is not a flat conjunction.
    WeightsNeedFlatConjunction,
    /// USING named an unknown scoring function.
    UnknownScoring(String),
    /// USING applies to conjunctions only.
    UsingNeedsConjunction,
    /// WEIGHTS arity differs from conjunct count.
    WeightArity {
        /// Number of conjuncts.
        conjuncts: usize,
        /// Number of weights.
        weights: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of query"),
            ParseError::Unexpected { found, expected } => {
                write!(f, "expected {expected}, found '{found}'")
            }
            ParseError::BadTopCount(s) => write!(f, "bad TOP count '{s}'"),
            ParseError::BadWeights(e) => write!(f, "bad weights: {e}"),
            ParseError::WeightsNeedFlatConjunction => {
                write!(f, "WEIGHTS requires a flat AND of atoms")
            }
            ParseError::UnknownScoring(name) => {
                write!(
                    f,
                    "unknown scoring function '{name}' (try min/product/lukasiewicz/mean/geomean)"
                )
            }
            ParseError::UsingNeedsConjunction => {
                write!(f, "USING applies to a top-level conjunction")
            }
            ParseError::WeightArity { conjuncts, weights } => {
                write!(f, "{conjuncts} conjuncts but {weights} weights")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A parsed statement: the query AST plus the requested k.
#[derive(Debug)]
pub struct Statement {
    /// Number of answers requested.
    pub k: usize,
    /// The query.
    pub query: Query,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Text(String),
    Number(String),
    Eq,
    Tilde,
    LParen,
    RParen,
    Comma,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '~' => {
                chars.next();
                out.push(Token::Tilde);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ParseError::UnexpectedEnd),
                    }
                }
                out.push(Token::Text(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Number(s));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => {
                return Err(ParseError::Unexpected {
                    found: other.to_string(),
                    expected: "a token",
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token, ParseError> {
        let t = self.tokens.get(self.pos).ok_or(ParseError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::Unexpected {
                found: format!("{other:?}"),
                expected: "keyword",
            }),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expr(&mut self) -> Result<Query, ParseError> {
        let mut parts = vec![self.conj()?];
        while self.at_keyword("OR") {
            self.pos += 1;
            parts.push(self.conj()?);
        }
        Ok(if parts.len() == 1 {
            // lint:allow(no-panic): guarded by the len() == 1 check on the previous line
            parts.pop().expect("non-empty")
        } else {
            Query::or(parts)
        })
    }

    fn conj(&mut self) -> Result<Query, ParseError> {
        let mut parts = vec![self.unit()?];
        while self.at_keyword("AND") {
            self.pos += 1;
            parts.push(self.unit()?);
        }
        Ok(if parts.len() == 1 {
            // lint:allow(no-panic): guarded by the len() == 1 check on the previous line
            parts.pop().expect("non-empty")
        } else {
            Query::and(parts)
        })
    }

    fn unit(&mut self) -> Result<Query, ParseError> {
        if self.at_keyword("NOT") {
            self.pos += 1;
            return Ok(Query::not(self.unit()?));
        }
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let inner = self.expr()?;
            match self.next()? {
                Token::RParen => return Ok(inner),
                other => {
                    return Err(ParseError::Unexpected {
                        found: format!("{other:?}"),
                        expected: "')'",
                    })
                }
            }
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Query, ParseError> {
        let attr = match self.next()? {
            Token::Ident(s) => s.clone(),
            other => {
                return Err(ParseError::Unexpected {
                    found: format!("{other:?}"),
                    expected: "an attribute name",
                })
            }
        };
        let crisp = match self.next()? {
            Token::Eq => true,
            Token::Tilde => false,
            other => {
                return Err(ParseError::Unexpected {
                    found: format!("{other:?}"),
                    expected: "'=' or '~'",
                })
            }
        };
        let value = match self.next()? {
            Token::Text(s) => s.clone(),
            Token::Number(s) => s.clone(),
            other => {
                return Err(ParseError::Unexpected {
                    found: format!("{other:?}"),
                    expected: "a quoted value",
                })
            }
        };
        let target = if crisp {
            if let Ok(i) = value.parse::<i64>() {
                Target::Int(i)
            } else {
                Target::Text(value)
            }
        } else {
            Target::Similar(value)
        };
        Ok(Query::atomic(attr, target))
    }
}

/// Parses a statement.
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.keyword("SELECT")?;
    p.keyword("TOP")?;
    let k = match p.next()? {
        Token::Number(s) => s
            .parse::<usize>()
            .ok()
            .filter(|&k| k > 0)
            .ok_or_else(|| ParseError::BadTopCount(s.clone()))?,
        other => {
            return Err(ParseError::Unexpected {
                found: format!("{other:?}"),
                expected: "a count after TOP",
            })
        }
    };
    p.keyword("WHERE")?;
    let mut query = p.expr()?;

    // USING <scoring>: swap the top-level conjunction's rule.
    let mut using: Option<ScoringHandle> = None;
    if p.at_keyword("USING") {
        p.pos += 1;
        let name = match p.next()? {
            Token::Ident(s) => s.clone(),
            other => {
                return Err(ParseError::Unexpected {
                    found: format!("{other:?}"),
                    expected: "a scoring function name",
                })
            }
        };
        let handle: ScoringHandle = match name.to_ascii_lowercase().as_str() {
            "min" => Arc::new(Min),
            "product" => Arc::new(Product),
            "lukasiewicz" => Arc::new(Lukasiewicz),
            "mean" | "average" => Arc::new(ArithmeticMean),
            "geomean" => Arc::new(GeometricMean),
            _ => return Err(ParseError::UnknownScoring(name)),
        };
        match query {
            Query::And { children, .. } => {
                query = Query::and_with(children, handle.clone());
            }
            Query::Atomic(_) => {} // a single atom's grade is the grade
            _ => return Err(ParseError::UsingNeedsConjunction),
        }
        using = Some(handle);
    }

    let query = if p.at_keyword("WEIGHTS") {
        p.pos += 1;
        let mut weights = Vec::new();
        loop {
            match p.next()? {
                Token::Number(s) => weights.push(
                    s.parse::<f64>()
                        .map_err(|_| ParseError::BadTopCount(s.clone()))?,
                ),
                other => {
                    return Err(ParseError::Unexpected {
                        found: format!("{other:?}"),
                        expected: "a weight",
                    })
                }
            }
            if matches!(p.peek(), Some(Token::Comma)) {
                p.pos += 1;
            } else {
                break;
            }
        }
        let theta = Weighting::from_ratios(&weights).map_err(ParseError::BadWeights)?;
        let children = match query {
            Query::And { children, .. }
                if children.iter().all(|c| matches!(c, Query::Atomic(_))) =>
            {
                children
            }
            q @ Query::Atomic(_) => vec![q],
            _ => return Err(ParseError::WeightsNeedFlatConjunction),
        };
        if children.len() != theta.arity() {
            return Err(ParseError::WeightArity {
                conjuncts: children.len(),
                weights: theta.arity(),
            });
        }
        let rule: ScoringHandle = using.unwrap_or_else(|| Arc::new(Min));
        // lint:allow(no-panic): theta length was validated against children two lines up
        Query::weighted(children, rule, theta).expect("arity checked just above")
    } else {
        query
    };

    if let Some(extra) = p.peek() {
        return Err(ParseError::Unexpected {
            found: format!("{extra:?}"),
            expected: "end of query",
        });
    }
    Ok(Statement { k, query })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_beatles_query() {
        let s = parse("SELECT TOP 10 WHERE Artist='Beatles' AND AlbumColor~'red'").unwrap();
        assert_eq!(s.k, 10);
        let text = s.query.to_string();
        assert!(text.contains("Artist='Beatles'"), "{text}");
        assert!(
            text.contains("AlbumColor=~'red'") || text.contains("~'red'"),
            "{text}"
        );
    }

    #[test]
    fn parses_disjunction_and_precedence() {
        let s = parse("SELECT TOP 3 WHERE Color~'red' AND Shape~'round' OR Color~'blue'").unwrap();
        // AND binds tighter: OR(AND(color,shape), blue).
        match &s.query {
            Query::Or { children, .. } => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[0], Query::And { .. }));
                assert!(matches!(children[1], Query::Atomic(_)));
            }
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn parses_not_and_parens() {
        let s = parse("SELECT TOP 1 WHERE NOT (Color~'red' OR Color~'blue')").unwrap();
        assert!(matches!(s.query, Query::Not(_)));
    }

    #[test]
    fn parses_weights() {
        let s = parse("SELECT TOP 5 WHERE Color~'red' AND Shape~'round' WEIGHTS 2, 1").unwrap();
        match &s.query {
            Query::Weighted { weighting, .. } => {
                assert!((weighting.weights()[0] - 2.0 / 3.0).abs() < 1e-12);
            }
            other => panic!("expected Weighted, got {other}"),
        }
    }

    #[test]
    fn parses_using_clause() {
        let s = parse("SELECT TOP 4 WHERE Color~'red' AND Shape~'round' USING product").unwrap();
        match &s.query {
            Query::And { scoring, .. } => assert_eq!(scoring.name(), "product"),
            other => panic!("expected And, got {other}"),
        }
        // USING feeds the weighted rule too.
        let s = parse("SELECT TOP 4 WHERE Color~'red' AND Shape~'round' USING mean WEIGHTS 2, 1")
            .unwrap();
        match &s.query {
            Query::Weighted { scoring, .. } => assert_eq!(scoring.name(), "arith-mean"),
            other => panic!("expected Weighted, got {other}"),
        }
        assert!(matches!(
            parse("SELECT TOP 4 WHERE Color~'red' AND Shape~'round' USING cubist"),
            Err(ParseError::UnknownScoring(_))
        ));
        assert!(matches!(
            parse("SELECT TOP 4 WHERE Color~'red' OR Shape~'round' USING product"),
            Err(ParseError::UsingNeedsConjunction)
        ));
    }

    #[test]
    fn parses_integer_crisp_targets() {
        let s = parse("SELECT TOP 2 WHERE Year=1969").unwrap();
        match &s.query {
            Query::Atomic(a) => assert_eq!(a.target, Target::Int(1969)),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn weight_errors() {
        assert!(matches!(
            parse("SELECT TOP 5 WHERE Color~'red' AND Shape~'round' WEIGHTS 1"),
            Err(ParseError::WeightArity {
                conjuncts: 2,
                weights: 1
            })
        ));
        assert!(matches!(
            parse("SELECT TOP 5 WHERE NOT Color~'red' WEIGHTS 1"),
            Err(ParseError::WeightsNeedFlatConjunction)
        ));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse("SELECT TOP 0 WHERE Color~'red'").is_err());
        assert!(parse("SELECT TOP x WHERE Color~'red'").is_err());
        assert!(parse("SELECT TOP 5 WHERE Color 'red'").is_err());
        assert!(parse("SELECT TOP 5 WHERE Color~'red").is_err()); // unterminated
        assert!(parse("SELECT TOP 5 WHERE Color~'red' garbage='x'").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select top 2 where Color~'red' and Shape~'round'").is_ok());
    }
}
