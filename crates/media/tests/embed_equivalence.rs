//! Property suite: the Cholesky-embedded Euclidean kernel is
//! observationally identical to the quadratic-form distance of eq. (1).
//!
//! * [`EmbeddedDistance`] agrees with [`QuadraticFormDistance`] within
//!   1e-9 on random normalized histograms, across grid sizes;
//! * the early-abandoning corpus scan (with and without the §2.1
//!   bounding-filter first stage) and the thread-parallel scan return
//!   results identical to the brute-force oracle — same indices, same
//!   distances, same (distance, index) order, including ties.

use proptest::prelude::*;

use fmdb_media::color::{ColorHistogram, ColorSpace};
use fmdb_media::distance::{HistogramDistance, QuadraticFormDistance};
use fmdb_media::embed::{EmbeddedCorpus, EmbeddedDistance, EmbeddedSpace};

/// A randomly drawn corpus-scan comparison.
#[derive(Debug, Clone)]
struct Scenario {
    bins_per_channel: usize,
    n: usize,
    k_nearest: usize,
    threads: usize,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        2usize..=4,
        5usize..80,
        prop_oneof![Just(1usize), Just(5usize), Just(100usize)],
        1usize..=5,
        0u64..1_000_000,
    )
        .prop_map(|(bins_per_channel, n, k_nearest, threads, seed)| Scenario {
            bins_per_channel,
            n,
            k_nearest,
            threads,
            seed,
        })
}

/// Deterministic pseudo-random normalized histograms (sparse-ish, like
/// real images: a handful of dominant bins).
fn histograms(space: &ColorSpace, n: usize, mut state: u64) -> Vec<ColorHistogram> {
    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let k = space.k();
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let mut masses = vec![0.0; k];
            let dominant = (next() * k as f64) as usize % k;
            masses[dominant] = 4.0 + next();
            for _ in 0..4 {
                let b = (next() * k as f64) as usize % k;
                masses[b] += next();
            }
            ColorHistogram::from_masses(masses).expect("positive masses")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `EmbeddedDistance` ≡ `QuadraticFormDistance` within 1e-9.
    #[test]
    fn embedded_distance_matches_quadratic_form(
        bins_per_channel in 2usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let space = ColorSpace::rgb_grid(bins_per_channel).expect("valid grid");
        let qf = QuadraticFormDistance::new(space.similarity_matrix());
        let embedded =
            EmbeddedDistance::new(EmbeddedSpace::for_space(&space).expect("QBIC matrix embeds"));
        let hists = histograms(&space, 12, seed);
        for x in &hists {
            for y in &hists {
                let slow = qf.distance(x, y).expect("same space");
                let fast = embedded.distance(x, y).expect("same space");
                prop_assert!(
                    (slow - fast).abs() < 1e-9,
                    "k={}: {slow} vs {fast}",
                    space.k()
                );
            }
        }
    }

    /// Zone-map pruning is invisible in answers: pruned and unpruned
    /// scans agree bit for bit across block sizes and thresholds,
    /// including degenerate corpora (k ≥ n; every histogram equal).
    #[test]
    fn pruned_equivalence_across_block_sizes_and_thresholds(
        s in scenario(),
        block in prop_oneof![Just(1usize), Just(3), Just(8), Just(64)],
        all_equal in prop_oneof![Just(false), Just(true)],
    ) {
        let space = ColorSpace::rgb_grid(s.bins_per_channel).expect("valid grid");
        let mut hists = histograms(&space, s.n, s.seed);
        if all_equal {
            let first = hists[0].clone();
            hists = vec![first; s.n];
        }
        let query = &histograms(&space, 1, s.seed ^ 0xdead_beef)[0];
        let corpus = EmbeddedCorpus::build(
            EmbeddedSpace::for_space(&space).expect("QBIC matrix embeds"),
            &hists,
        )
        .expect("same space")
        .with_prune_block(block);

        // k ≥ n is in the sweep (k_nearest = 100 > n ≤ 80).
        let (pruned, pstats) = corpus.knn(query, s.k_nearest).expect("same space");
        let (unpruned, ustats) = corpus.knn_unpruned(query, s.k_nearest).expect("same space");
        prop_assert_eq!(&pruned, &unpruned, "block={}", block);
        prop_assert!(
            pstats.completed <= ustats.completed,
            "pruning may only reduce work: {} vs {} completed",
            pstats.completed,
            ustats.completed
        );

        // Threshold-seeded scans: a live bound (drawn from the true
        // distance spread, plus extremes) never changes the answer.
        let (oracle, _) = corpus.knn_brute(query, s.n.max(1)).expect("same space");
        let mid = oracle[oracle.len() / 2].1;
        for bound in [0.0, mid, f64::INFINITY] {
            let (p, _) = corpus
                .knn_within(query, s.k_nearest, bound, true)
                .expect("same space");
            let (u, _) = corpus
                .knn_within(query, s.k_nearest, bound, false)
                .expect("same space");
            prop_assert_eq!(&p, &u, "block={} bound={}", block, bound);
        }
    }

    /// Early-abandoning, filtered, and parallel scans all equal the
    /// brute-force oracle exactly.
    #[test]
    fn knn_variants_match_brute_force_oracle(s in scenario()) {
        let space = ColorSpace::rgb_grid(s.bins_per_channel).expect("valid grid");
        let hists = histograms(&space, s.n, s.seed);
        let query = &histograms(&space, 1, s.seed ^ 0xdead_beef)[0];

        let plain = EmbeddedCorpus::build(
            EmbeddedSpace::for_space(&space).expect("QBIC matrix embeds"),
            &hists,
        )
        .expect("same space");
        let filtered = EmbeddedCorpus::build_filtered(&space, &hists).expect("filter derivable");

        let (oracle, _) = plain.knn_brute(query, s.k_nearest).expect("same space");
        for (label, got) in [
            ("abandon", plain.knn(query, s.k_nearest).expect("same space").0),
            ("filtered", filtered.knn(query, s.k_nearest).expect("same space").0),
            (
                "parallel",
                plain
                    .knn_parallel(query, s.k_nearest, s.threads)
                    .expect("same space")
                    .0,
            ),
            (
                "filtered-parallel",
                filtered
                    .knn_parallel(query, s.k_nearest, s.threads)
                    .expect("same space")
                    .0,
            ),
        ] {
            prop_assert_eq!(oracle.len(), got.len(), "{}: length mismatch", label);
            for (o, g) in oracle.iter().zip(&got) {
                prop_assert_eq!(o.0, g.0, "{}: index order differs", label);
                prop_assert_eq!(o.1, g.1, "{}: distance differs at {}", label, o.0);
            }
        }
    }
}
