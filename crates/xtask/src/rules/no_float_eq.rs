//! Rule `no-float-eq` (L2): no `==` / `!=` between floating-point
//! expressions.
//!
//! Grades in this codebase are `f64` in `[0, 1]`; exact equality on
//! them is almost always a round-off bug (the motivating incident:
//! `denom == 0.0` in the Hamacher t-norm). The shared alternative is
//! `fmdb_core::float::approx_eq` with its single documented epsilon.
//!
//! Detection is a *lexical heuristic*, deliberately biased toward
//! false negatives over false positives: an `==`/`!=` is flagged only
//! when the surrounding operand window — tokens scanned outward to the
//! nearest expression boundary at bracket depth zero — contains
//! evidence of floatness: a float literal, an `f64`/`f32` token, or a
//! `.value()` call (the `Score` grade accessor).
//!
//! Allowlist: files under a `linalg` module (distance kernels need
//! bit-exact comparisons in places) and all test/bench/example code.

use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::workspace::{FileClass, SourceFile};

const RULE: &str = "no-float-eq";

/// Tokens that terminate an operand window at depth zero.
const BOUNDARY: &[&str] = &[
    ";", ",", "{", "}", "&&", "||", "=", "==", "!=", "return", "if", "while", "match", "let",
    "else", "->", "=>",
];

/// Checks one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.class != FileClass::Lib {
        return Vec::new();
    }
    // Allowlist: linear-algebra kernels compare for bit-exactness on
    // purpose (e.g. checking an input against a cached factorization).
    if file
        .rel_path
        .components()
        .any(|c| c.as_os_str().to_string_lossy().contains("linalg"))
    {
        return Vec::new();
    }
    let code = &file.code;
    let mut diags = Vec::new();
    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Punct || !matches!(token.text.as_str(), "==" | "!=") {
            continue;
        }
        if file.in_test_region(token.line) {
            continue;
        }
        let window = operand_window(code, i);
        if window.iter().any(|&t| is_float_evidence(code, t)) {
            diags.push(
                Diagnostic::new(
                    RULE,
                    &file.rel_path,
                    token.line,
                    token.col,
                    format!("`{}` on a floating-point expression", token.text),
                )
                .with_help(
                    "use `fmdb_core::float::approx_eq` (shared epsilon), an ordered \
                     comparison, or add `// lint:allow(no-float-eq): <why exactness is sound>`",
                ),
            );
        }
    }
    diags
}

/// Collects the indices of tokens in the operand window around the
/// comparison at `at`: outward in both directions to the nearest
/// expression boundary at bracket depth zero.
fn operand_window(code: &[Token], at: usize) -> Vec<usize> {
    let mut window = Vec::new();
    // Leftward.
    let mut depth = 0usize;
    let mut j = at;
    while j > 0 {
        j -= 1;
        let text = code[j].text.as_str();
        match text {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            t if depth == 0 && BOUNDARY.contains(&t) => break,
            _ => {}
        }
        window.push(j);
    }
    // Rightward.
    depth = 0;
    j = at;
    while j + 1 < code.len() {
        j += 1;
        let text = code[j].text.as_str();
        match text {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            t if depth == 0 && BOUNDARY.contains(&t) => break,
            _ => {}
        }
        window.push(j);
    }
    window
}

/// Evidence that the token makes its expression floating-point.
fn is_float_evidence(code: &[Token], i: usize) -> bool {
    let token = &code[i];
    match token.kind {
        TokenKind::Float => true,
        TokenKind::Ident if matches!(token.text.as_str(), "f64" | "f32") => true,
        // `.value()` — the Score grade accessor returning f64.
        TokenKind::Ident if token.text == "value" => {
            i.checked_sub(1)
                .map(|p| code[p].text == ".")
                .unwrap_or(false)
                && code.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::analyze;
    use std::path::PathBuf;

    fn check_src(path: &str, src: &str) -> Vec<Diagnostic> {
        let file = analyze(PathBuf::from(path), src);
        check(&file)
            .into_iter()
            .filter(|d| !file.allowed(d.rule, d.line))
            .collect()
    }

    #[test]
    fn flags_literal_and_typed_float_comparisons() {
        let src = "fn f(denom: f64, x: f64) -> bool {\n    let zero = denom == 0.0;\n    let same = (x as f64) != (denom as f64);\n    zero && same\n}\n";
        let diags = check_src("crates/core/src/f.rs", src);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn flags_score_value_comparisons() {
        let src = "fn f(a: Score, b: Score) -> bool {\n    a.value() == b.value()\n}\n";
        assert_eq!(check_src("crates/core/src/f.rs", src).len(), 1);
    }

    #[test]
    fn ignores_integer_and_id_comparisons() {
        let src = "fn f(a: usize, b: u64) -> bool {\n    a == 3 && b != 4 && a == b as usize\n}\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn windows_stop_at_expression_boundaries() {
        // The float 1.0 belongs to the *other* side of `&&` — the
        // id comparison must not inherit it.
        let src = "fn f(id: usize, g: f64) -> bool {\n    id == 7 && g < 1.0\n}\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn exempts_linalg_and_tests() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        assert!(check_src("crates/core/src/linalg/chol.rs", src).is_empty());
        assert!(check_src("crates/core/tests/t.rs", src).is_empty());
        let in_test_mod = "#[cfg(test)]\nmod tests {\n    fn t(x: f64) -> bool { x == 0.0 }\n}\n";
        assert!(check_src("crates/core/src/f.rs", in_test_mod).is_empty());
    }

    #[test]
    fn honors_suppressions() {
        let src = "fn f(x: f64) -> bool {\n    // lint:allow(no-float-eq): sentinel is written verbatim, never computed\n    x == -1.0\n}\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
    }
}
