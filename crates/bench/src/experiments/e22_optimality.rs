//! E22 — empirical instance-optimality ratios (FLN).
//!
//! Fagin–Lotem–Naor's headline theorem says TA is *instance optimal*:
//! its cost on every instance is within a constant factor of the best
//! any deterministic algorithm could do **on that instance**. This
//! experiment measures the factor empirically: a per-instance
//! certificate oracle ([`OptimalityOracle`]) computes the cheapest
//! access sequence that could certify a (θ-approximate) top-k, and each
//! algorithm's charged cost is divided by it. The sweep crosses the E5
//! cost-ratio grid (c_R/c_S from 0.1 to 100) with approximation slack
//! θ ∈ {0, 0.01, 0.1, 0.5}; CA's interleave depth follows the cost
//! model (`h = max(1, ⌊c_R/c_S⌋)`), so its ratio shows the combined
//! algorithm adapting where TA and NRA cannot.
//!
//! Every ratio is ≥ 1 by construction (the oracle is a lower bound) and
//! must stay finite — the `cargo xtask check-bench` gate enforces both
//! on the `BENCH_engine.json` metrics this experiment emits.

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::approx::{ApproxNra, ApproxTa};
use fmdb_middleware::algorithms::ca::CombinedAlgorithm;
use fmdb_middleware::algorithms::{TopKAlgorithm, TopKResult};
use fmdb_middleware::optimality::OptimalityOracle;
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::stats::CostModel;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, Report, Table};
use crate::runners::RunCfg;

/// The E5 cost-ratio grid the sweep reuses.
const RATIOS: [f64; 7] = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];
/// Approximation slacks, exact first.
const THETAS: [f64; 4] = [0.0, 0.01, 0.1, 0.5];

fn scalar_run(
    algorithm: &dyn TopKAlgorithm,
    n: usize,
    m: usize,
    seed: u64,
    k: usize,
) -> TopKResult {
    let mut sources = independent_uniform(n, m, seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    algorithm
        .top_k(&mut refs, &Min, k)
        .expect("valid monotone run")
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E22",
        "empirical instance-optimality ratios (TA/NRA/CA, θ-approximate)",
        "FLN: CA combines TA's and NRA's strengths — against a per-instance certificate \
         lower bound, TA's ratio grows with c_R/c_S (it probes every object it sees) and \
         NRA's with c_S/c_R (it can never close intervals), while CA stays within a small \
         constant across the whole cost-ratio sweep",
    );
    let n = cfg.pick(2048, 256);
    let m = 2usize;
    let k = 10usize;

    let mut t = Table::new(
        format!(
            "charged cost / per-instance certificate, N = {n}, m = {m}, k = {k}, min, \
             mean over {} seeds",
            cfg.seeds
        ),
        &[
            "theta",
            "c_R/c_S",
            "CA h",
            "TA ratio",
            "NRA ratio",
            "CA ratio",
        ],
    );

    let mut worst = 1.0f64;
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for &theta in &THETAS {
        // The certificate curves and the TA/NRA access counts depend on
        // θ but not on the cost model: build/run once per seed, price
        // under every ratio.
        let mut oracles = Vec::new();
        let mut ta_runs = Vec::new();
        let mut nra_runs = Vec::new();
        for seed in 0..cfg.seeds {
            let mut sources = independent_uniform(n, m, seed);
            let mut refs: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect();
            oracles.push(
                OptimalityOracle::build(&mut refs, &Min, k, theta).expect("valid oracle build"),
            );
            ta_runs.push(scalar_run(&ApproxTa::new(theta), n, m, seed, k));
            nra_runs.push(scalar_run(&ApproxNra::new(theta), n, m, seed, k));
        }

        for &ratio in &RATIOS {
            let model = CostModel::random_to_sorted_ratio(ratio).expect("valid cost ratio");
            let ca = CombinedAlgorithm::for_cost(&model, theta);
            let mut sums = [0.0f64; 3];
            for seed in 0..cfg.seeds {
                let oracle = &oracles[seed as usize];
                let ca_run = scalar_run(&ca, n, m, seed, k);
                sums[0] += oracle.ratio(ta_runs[seed as usize].stats.charged(&model), &model);
                sums[1] += oracle.ratio(nra_runs[seed as usize].stats.charged(&model), &model);
                sums[2] += oracle.ratio(ca_run.stats.charged(&model), &model);
            }
            let means: Vec<f64> = sums.iter().map(|s| s / cfg.seeds as f64).collect();
            worst = means.iter().fold(worst, |w, &r| w.max(r));
            t.row(vec![
                f3(theta),
                f3(ratio),
                ca.interleave().to_string(),
                f3(means[0]),
                f3(means[1]),
                f3(means[2]),
            ]);
            for (alg, mean) in ["ta", "nra", "ca"].iter().zip(&means) {
                metrics.push((format!("opt_ratio_{alg}_t{theta}_r{ratio}"), *mean));
            }
        }
    }
    report.table(t);
    for (name, value) in metrics {
        report.metric(name, value);
    }
    report.note(format!(
        "every ratio is ≥ 1 by construction (the certificate is a lower bound; the \
         optimality module's tests verify it under every algorithm); worst observed: \
         {worst:.2}x, reached by TA at c_R/c_S = 100 where its mandatory probe of every \
         seen object is priced 100× a sorted access."
    ));
    report.note(
        "the CA column is the headline: by probing only every h = max(1, ⌊c_R/c_S⌋) rounds \
         it tracks the cheaper of TA and NRA across the entire sweep — the empirical face \
         of FLN's combined-algorithm theorem. θ > 0 lifts all three curves uniformly: the \
         certificate for an approximate answer is cheaper, while the algorithms' halting \
         rules only partially exploit the slack.",
    );
    report
}
