//! NRA — top-k with **no random access** (extension).
//!
//! §4.2's sobering finding: random access presupposes a one-to-one id
//! mapping and a way to look up "the matching attributes of the same
//! object in the second stream", and that information "may not be
//! easily available (e.g., through an index)". When a subsystem simply
//! cannot answer point probes, A₀ is inapplicable — the regime later
//! formalized by Fagin–Lotem–Naor's NRA (PODS 2001), implemented here.
//!
//! NRA does sorted access only, maintaining for every seen object a
//! grade **interval**: the lower bound fills unknown conjuncts with 0,
//! the upper bound fills them with the list's last-streamed grade. It
//! stops when k objects' lower bounds dominate every other object's
//! upper bound (seen or unseen). The price of skipping random access is
//! that reported grades may remain intervals rather than exact values.

use std::collections::HashMap;

use fmdb_core::score::Score;
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::approx::upper_excluded;
use crate::algorithms::{validate, AlgoError, Algorithm, TopKResult};
use crate::request::TopKRequest;
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// An NRA answer: an object guaranteed to belong to the top k, with
/// the grade interval known when the algorithm stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedAnswer {
    /// The object.
    pub id: Oid,
    /// Guaranteed lower bound on its overall grade.
    pub lower: Score,
    /// Guaranteed upper bound on its overall grade.
    pub upper: Score,
}

impl BoundedAnswer {
    /// True if the interval has collapsed (the grade is exact).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }
}

/// Result of an NRA run.
#[derive(Debug, Clone, PartialEq)]
pub struct NraResult {
    /// A valid top-k *set* (every member's true grade ties or beats
    /// every non-member's), ordered by descending lower bound.
    pub answers: Vec<BoundedAnswer>,
    /// Access statistics — `random` is 0 by construction.
    pub stats: AccessStats,
}

/// The no-random-access algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nra;

impl Nra {
    /// Finds a top-`k` set using sorted access only.
    pub fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<NraResult, AlgoError> {
        nra_core(sources, scoring, k, 0.0)
    }
}

/// The NRA round loop, shared with
/// [`crate::algorithms::approx::ApproxNra`]. At `theta = 0` the
/// exclusion comparison is the exact `Score` ordering, so the exact
/// algorithm is literally this function.
pub(crate) fn nra_core(
    sources: &mut [&mut dyn GradedSource],
    scoring: &dyn ScoringFunction,
    k: usize,
    theta: f64,
) -> Result<NraResult, AlgoError> {
    validate(sources, scoring, k)?;
    let m = sources.len();
    for source in sources.iter_mut() {
        source.rewind();
    }
    let mut stats = AccessStats::ZERO;
    let mut seen: HashMap<Oid, Vec<Option<Score>>> = HashMap::new();
    let mut bottoms = vec![Score::ONE; m];
    let mut exhausted = vec![false; m];
    let mut low_buf = Vec::with_capacity(m);
    let mut high_buf = Vec::with_capacity(m);
    // Threshold feeding: under a zero-absorbing combiner (t-norms:
    // combine ≤ min), a sorted entry graded below the current k-th
    // lower bound cannot reach the top k, so τ is a valid per-source
    // hint for [`GradedSource::note_threshold`] — purely physical
    // (e.g. gating read-ahead), never affecting answers or charges.
    let feed = matches!(
        crate::planner::classify_combiner(scoring, m),
        crate::planner::CombinerKind::ZeroAbsorbing
    );

    loop {
        // One round of sorted access on every live list.
        let mut progressed = false;
        for i in 0..m {
            if exhausted[i] {
                continue;
            }
            match sources[i].sorted_next() {
                Some(so) => {
                    stats.sorted += 1;
                    progressed = true;
                    bottoms[i] = so.grade;
                    let slots = seen.entry(so.id).or_insert_with(|| vec![None; m]);
                    slots[i] = Some(so.grade);
                }
                None => {
                    exhausted[i] = true;
                    bottoms[i] = Score::ZERO;
                }
            }
        }

        // Bounds for every seen object.
        let mut bounded: Vec<BoundedAnswer> = Vec::with_capacity(seen.len());
        for (&oid, slots) in &seen {
            low_buf.clear();
            high_buf.clear();
            for (i, &g) in slots.iter().enumerate() {
                low_buf.push(g.unwrap_or(Score::ZERO));
                high_buf.push(g.unwrap_or(bottoms[i]));
            }
            bounded.push(BoundedAnswer {
                id: oid,
                lower: scoring.combine(&low_buf),
                upper: scoring.combine(&high_buf),
            });
        }
        // Descending lower bound; ties by ascending oid for
        // determinism.
        bounded.sort_by(|a, b| b.lower.cmp(&a.lower).then(a.id.cmp(&b.id)));

        let enough_candidates = bounded.len() >= k;
        if enough_candidates {
            let tau = bounded[k - 1].lower;
            if feed {
                for source in sources.iter_mut() {
                    source.note_threshold(tau);
                }
            }
            // Unseen objects are bounded by combine(bottoms).
            let unseen_upper = scoring.combine(&bottoms);
            let rest_ok = bounded[k..]
                .iter()
                .all(|b| upper_excluded(b.upper, tau, theta));
            let unseen_ok = upper_excluded(unseen_upper, tau, theta) || !progressed;
            if rest_ok && unseen_ok {
                bounded.truncate(k);
                return Ok(NraResult {
                    answers: bounded,
                    stats,
                });
            }
        }
        if !progressed {
            // Everything streamed: bounds are exact.
            bounded.truncate(k);
            return Ok(NraResult {
                answers: bounded,
                stats,
            });
        }
    }
}

impl Algorithm for Nra {
    fn name(&self) -> &'static str {
        "nra"
    }

    /// Runs NRA against a [`TopKRequest`], flattening each
    /// [`BoundedAnswer`] to its certified **lower** bound. The answer
    /// *set* is a valid top-k set; reported grades may understate the
    /// truth wherever the interval had not collapsed — that is the
    /// price of the no-random-access regime. Callers needing the
    /// intervals should use [`Nra::top_k`] directly.
    fn run(&mut self, request: &TopKRequest) -> Result<TopKResult, AlgoError> {
        let scoring = request.scoring();
        let result = request.with_sources(|refs| Nra::top_k(self, refs, &scoring, request.k()))?;
        Ok(TopKResult {
            answers: result
                .answers
                .iter()
                .map(|b| fmdb_core::score::ScoredObject::new(b.id, b.lower))
                .collect(),
            stats: result.stats,
        })
    }
}

/// NRA packaged as a [`TopKAlgorithm`]: flattens every answer to its
/// certified **lower** bound, exactly like `<Nra as Algorithm>::run`,
/// but usable wherever a `&dyn TopKAlgorithm` is required (notably
/// [`crate::engine::Engine::run_algorithm`], where it advertises the
/// sharded NRA kernel).
///
/// Grade caveat carried over from [`Nra`]: the answer *set* is a valid
/// top-k set, but serial grades may understate the truth wherever the
/// interval had not collapsed. The sharded kernel only stops on
/// collapsed intervals, so its grades are exact — equivalence tests
/// must therefore compare true-grade multisets, not reported grades.
#[derive(Debug, Clone, Copy, Default)]
pub struct NraLowerBound;

impl crate::algorithms::TopKAlgorithm for NraLowerBound {
    fn name(&self) -> &'static str {
        "nra-lower-bound"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        let result = Nra.top_k(sources, scoring, k)?;
        Ok(TopKResult {
            answers: result
                .answers
                .iter()
                .map(|b| fmdb_core::score::ScoredObject::new(b.id, b.lower))
                .collect(),
            stats: result.stats,
        })
    }

    fn shard_kernel(&self) -> Option<crate::sharded::ShardKernel> {
        Some(crate::sharded::ShardKernel::Nra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::Naive;
    use crate::algorithms::TopKAlgorithm;
    use crate::oracle::all_grades;
    use crate::source::VecSource;
    use crate::workload::independent_uniform;
    use fmdb_core::scoring::means::ArithmeticMean;
    use fmdb_core::scoring::tnorms::Min;

    fn run_nra(sources: &mut [VecSource], scoring: &dyn ScoringFunction, k: usize) -> NraResult {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        Nra.top_k(&mut refs, scoring, k).unwrap()
    }

    /// Checks that the returned ids form a valid top-k *set* under the
    /// true grades, and that every interval contains the true grade.
    fn assert_valid_set(
        sources: &mut [VecSource],
        scoring: &dyn ScoringFunction,
        result: &NraResult,
        k: usize,
    ) {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let truth = all_grades(&mut refs, scoring);
        assert_eq!(result.answers.len(), k.min(truth.len()));
        let mut returned_true: Vec<Score> = result.answers.iter().map(|a| truth[&a.id]).collect();
        returned_true.sort();
        let weakest = returned_true[0];
        for (&oid, &grade) in &truth {
            if !result.answers.iter().any(|a| a.id == oid) {
                assert!(
                    grade.value() <= weakest.value() + 1e-9,
                    "object {oid} ({grade}) beats returned floor {weakest}"
                );
            }
        }
        for a in &result.answers {
            let t = truth[&a.id];
            assert!(
                a.lower.value() - 1e-9 <= t.value() && t.value() <= a.upper.value() + 1e-9,
                "interval [{}, {}] misses true {t}",
                a.lower,
                a.upper
            );
        }
        assert_eq!(result.stats.random, 0, "NRA must not random-access");
    }

    #[test]
    fn returns_a_valid_top_k_set_under_min() {
        for k in [1usize, 5, 12] {
            let mut sources = independent_uniform(300, 2, 9);
            let result = run_nra(&mut sources, &Min, k);
            assert_valid_set(&mut sources, &Min, &result, k);
        }
    }

    #[test]
    fn returns_a_valid_top_k_set_under_mean_three_lists() {
        let mut sources = independent_uniform(200, 3, 11);
        let result = run_nra(&mut sources, &ArithmeticMean, 6);
        assert_valid_set(&mut sources, &ArithmeticMean, &result, 6);
    }

    #[test]
    fn grade_set_matches_naive_grades() {
        let mut a = independent_uniform(250, 2, 4);
        let nra = run_nra(&mut a, &Min, 8);
        let mut b = independent_uniform(250, 2, 4);
        let mut refs: Vec<&mut dyn GradedSource> =
            b.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let naive = Naive.top_k(&mut refs, &Min, 8).unwrap();
        // Same true-grade multiset (sets may differ only on ties).
        let mut refs2: Vec<&mut dyn GradedSource> =
            b.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let truth = all_grades(&mut refs2, &Min);
        let mut nra_grades: Vec<Score> = nra.answers.iter().map(|x| truth[&x.id]).collect();
        nra_grades.sort();
        let mut naive_grades: Vec<Score> = naive.answers.iter().map(|x| x.grade).collect();
        naive_grades.sort();
        for (x, y) in nra_grades.iter().zip(&naive_grades) {
            assert!(x.approx_eq(*y, 1e-9));
        }
    }

    #[test]
    fn small_universe_returns_everything_exactly() {
        let g = [0.9, 0.4, 0.7].map(Score::clamped);
        let h = [0.5, 0.8, 0.6].map(Score::clamped);
        let mut sources = vec![
            VecSource::from_dense("a", &g),
            VecSource::from_dense("b", &h),
        ];
        let result = run_nra(&mut sources, &Min, 3);
        assert_eq!(result.answers.len(), 3);
        for a in &result.answers {
            assert!(a.is_exact(), "fully drained lists give exact grades");
        }
        // min grades: [0.5, 0.4, 0.6] → order 2, 0, 1.
        let ids: Vec<Oid> = result.answers.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![2, 0, 1]);
    }

    #[test]
    fn costs_more_sorted_accesses_than_fa_but_zero_random() {
        use crate::algorithms::fa::FaginsAlgorithm;
        let mut a = independent_uniform(2000, 2, 21);
        let nra = run_nra(&mut a, &Min, 5);
        let mut b = independent_uniform(2000, 2, 21);
        let mut refs: Vec<&mut dyn GradedSource> =
            b.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let fa = FaginsAlgorithm.top_k(&mut refs, &Min, 5).unwrap();
        assert_eq!(nra.stats.random, 0);
        assert!(fa.stats.random > 0);
        // NRA usually pays deeper sorted streams for skipping probes.
        assert!(
            nra.stats.sorted >= fa.stats.sorted,
            "nra {} vs fa {}",
            nra.stats.sorted,
            fa.stats.sorted
        );
    }

    #[test]
    fn validates_arguments() {
        let mut none: Vec<&mut dyn GradedSource> = vec![];
        assert!(matches!(
            Nra.top_k(&mut none, &Min, 1),
            Err(AlgoError::NoSources)
        ));
    }
}
