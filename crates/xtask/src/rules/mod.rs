//! The lint rules and the driver that applies them.
//!
//! Every rule is a pure function from an analyzed [`SourceFile`] (plus
//! occasionally workspace-wide context) to diagnostics. The driver
//! here applies scoping policy uniformly: findings inside
//! `#[cfg(test)]` regions, test/bench/example files, or under a valid
//! `lint:allow` suppression are dropped **after** the rule runs, so
//! rules stay simple and the policy lives in one place.

pub mod atomic_ordering;
pub mod bounded_channels;
pub mod crate_hygiene;
pub mod detached_thread;
pub mod ignored_result;
pub mod lock_order;
pub mod no_deprecated;
pub mod no_float_eq;
pub mod no_panic;
pub mod unchecked_arith;

use crate::diagnostics::Diagnostic;
use crate::workspace::Workspace;

/// Runs every token-level lint rule and returns the raw findings,
/// before the `lint:allow` filter. `cargo xtask suppressions` diffs
/// markers against this stream to detect stale ones.
pub fn raw_all(ws: &Workspace) -> Vec<Diagnostic> {
    let deprecated = no_deprecated::collect_deprecated(ws);
    let mut diags = Vec::new();
    for file in &ws.files {
        diags.extend(no_panic::check(file));
        diags.extend(no_float_eq::check(file));
        diags.extend(bounded_channels::check(file));
        diags.extend(crate_hygiene::check(file));
        diags.extend(no_deprecated::check(file, &deprecated));
    }
    diags
}

/// Runs every rule over the workspace and returns the surviving
/// diagnostics, sorted by path, line, column.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let raw = raw_all(ws);
    let mut diags = Vec::new();
    for file in &ws.files {
        let path = file.rel_path.display().to_string();
        // Policy gate: suppressions silence findings; malformed
        // suppressions are findings of their own.
        diags.extend(
            raw.iter()
                .filter(|d| d.path == path && !file.allowed(d.rule, d.line))
                .cloned(),
        );
        diags.extend(file.suppression_diags.iter().cloned());
    }
    diags.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
    });
    diags
}
