//! In-crate property tests for the core semantic layer: every public
//! combinator must stay inside the unit interval and respect the §3
//! orderings on arbitrary inputs.

use proptest::prelude::*;

use fmdb_core::graded_set::GradedSet;
use fmdb_core::query::{Query, Target};
use fmdb_core::score::Score;
use fmdb_core::scoring::conorms::all_conorms;
use fmdb_core::scoring::means::{ArithmeticMean, GeometricMean, HarmonicMean};
use fmdb_core::scoring::tnorms::all_tnorms;
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::weights::{weighted_combine, Weighting};

fn score() -> impl Strategy<Value = Score> {
    (0.0f64..=1.0).prop_map(Score::clamped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn clamped_always_lands_in_the_unit_interval(v in proptest::num::f64::ANY) {
        let s = Score::clamped(v);
        prop_assert!((0.0..=1.0).contains(&s.value()));
    }

    #[test]
    fn new_accepts_exactly_the_unit_interval(v in -2.0f64..=3.0) {
        let ok = Score::new(v).is_ok();
        prop_assert_eq!(ok, (0.0..=1.0).contains(&v));
    }

    #[test]
    fn every_tnorm_stays_in_range_and_below_min(a in score(), b in score(), c in score()) {
        for norm in all_tnorms() {
            let v = norm.combine(&[a, b, c]);
            prop_assert!((0.0..=1.0).contains(&v.value()));
            let min = a.min(b).min(c);
            prop_assert!(v.value() <= min.value() + 1e-9, "{}", norm.norm_name());
        }
    }

    #[test]
    fn every_conorm_stays_in_range_and_above_max(a in score(), b in score()) {
        for conorm in all_conorms() {
            let v = conorm.s(a, b);
            prop_assert!((0.0..=1.0).contains(&v.value()));
            prop_assert!(
                v.value() >= a.max(b).value() - 1e-9,
                "{}",
                conorm.conorm_name()
            );
        }
    }

    #[test]
    fn means_lie_between_min_and_max(a in score(), b in score(), c in score()) {
        let fns: Vec<Box<dyn ScoringFunction>> = vec![
            Box::new(ArithmeticMean),
            Box::new(GeometricMean),
            Box::new(HarmonicMean),
        ];
        let lo = a.min(b).min(c).value();
        let hi = a.max(b).max(c).value();
        for f in &fns {
            let v = f.combine(&[a, b, c]).value();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{}", f.name());
        }
    }

    #[test]
    fn weighted_combine_stays_in_range(
        xs in proptest::collection::vec(0.0f64..=1.0, 1..6),
        ratios in proptest::collection::vec(0.01f64..5.0, 1..6),
    ) {
        let m = xs.len().min(ratios.len());
        let xs: Vec<Score> = xs[..m].iter().map(|&v| Score::clamped(v)).collect();
        let theta = Weighting::from_ratios(&ratios[..m]).expect("positive ratios");
        let v = weighted_combine(&fmdb_core::scoring::tnorms::Min, &theta, &xs);
        prop_assert!((0.0..=1.0).contains(&v.value()));
    }

    #[test]
    fn graded_set_sigma_count_bounds(grades in proptest::collection::vec(0.0f64..=1.0, 0..30)) {
        let set: GradedSet<usize> = grades
            .iter()
            .enumerate()
            .map(|(i, &g)| (i, Score::clamped(g)))
            .collect();
        let sigma = set.sigma_count();
        prop_assert!(sigma >= 0.0 && sigma <= set.len() as f64 + 1e-9);
        prop_assert!(set.support().len() <= set.len());
    }

    #[test]
    fn query_grades_stay_in_range(
        color in score(),
        shape in score(),
        pick in 0usize..4,
    ) {
        let c = Query::atomic("Color", Target::Similar("red".into()));
        let s = Query::atomic("Shape", Target::Similar("round".into()));
        let q = match pick {
            0 => Query::and(vec![c, s]),
            1 => Query::or(vec![c, s]),
            2 => Query::not(Query::and(vec![c, s])),
            _ => Query::weighted(
                vec![c, s],
                std::sync::Arc::new(fmdb_core::scoring::tnorms::Min),
                Weighting::from_ratios(&[3.0, 1.0]).expect("positive ratios"),
            )
            .expect("arity matches"),
        };
        let grade = q
            .grade(&|a| Some(if a.attribute == "Color" { color } else { shape }))
            .expect("all atoms graded");
        prop_assert!((0.0..=1.0).contains(&grade.value()));
    }
}
