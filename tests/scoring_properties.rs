//! Property-based tests for the scoring layer: t-norm/co-norm axioms,
//! De Morgan duality, and the Fagin–Wimmers desiderata on arbitrary
//! inputs (the §3/§5 laws, hammered beyond the unit tests' grids).

use proptest::prelude::*;

use fuzzymm::core::scoring::conorms::{BoundedSum, DrasticSum, EinsteinSum, Max, ProbabilisticSum};
use fuzzymm::core::scoring::negation::{Negation, Standard, Sugeno, YagerNeg};
use fuzzymm::core::scoring::tnorms::{
    Drastic, Einstein, Hamacher, Lukasiewicz, Min, Product, Yager,
};
use fuzzymm::core::scoring::{Conorm, Dual, TNorm};
use fuzzymm::prelude::*;

fn score() -> impl Strategy<Value = Score> {
    (0.0f64..=1.0).prop_map(Score::clamped)
}

/// A cloneable description of a t-norm (proptest values must be
/// `Clone + Debug`, which trait objects are not).
#[derive(Debug, Clone)]
enum NormSpec {
    Min,
    Product,
    Lukasiewicz,
    Drastic,
    Einstein,
    Hamacher(f64),
    Yager(f64),
}

impl NormSpec {
    fn build(&self) -> Box<dyn TNorm> {
        match *self {
            NormSpec::Min => Box::new(Min),
            NormSpec::Product => Box::new(Product),
            NormSpec::Lukasiewicz => Box::new(Lukasiewicz),
            NormSpec::Drastic => Box::new(Drastic),
            NormSpec::Einstein => Box::new(Einstein),
            NormSpec::Hamacher(g) => Box::new(Hamacher::new(g).expect("nonnegative gamma")),
            NormSpec::Yager(p) => Box::new(Yager::new(p).expect("positive p")),
        }
    }
}

fn tnorm() -> impl Strategy<Value = NormSpec> {
    prop_oneof![
        Just(NormSpec::Min),
        Just(NormSpec::Product),
        Just(NormSpec::Lukasiewicz),
        Just(NormSpec::Drastic),
        Just(NormSpec::Einstein),
        (0.0f64..5.0).prop_map(NormSpec::Hamacher),
        (0.5f64..6.0).prop_map(NormSpec::Yager),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tnorm_axioms_hold_for_random_arguments(spec in tnorm(), a in score(), b in score(), c in score()) {
        let norm = spec.build();
        // Boundary: t(x, 1) = x.
        prop_assert!(norm.t(a, Score::ONE).approx_eq(a, 1e-9));
        // Commutativity.
        prop_assert!(norm.t(a, b).approx_eq(norm.t(b, a), 1e-9));
        // Associativity.
        let left = norm.t(norm.t(a, b), c);
        let right = norm.t(a, norm.t(b, c));
        prop_assert!(left.approx_eq(right, 1e-7), "{}: {left} vs {right}", norm.norm_name());
        // Bounded above by min.
        prop_assert!(norm.t(a, b).value() <= a.min(b).value() + 1e-9);
    }

    #[test]
    fn tnorm_monotone_in_first_argument(spec in tnorm(), a in score(), a2 in score(), b in score()) {
        let norm = spec.build();
        let (lo, hi) = if a <= a2 { (a, a2) } else { (a2, a) };
        prop_assert!(norm.t(lo, b).value() <= norm.t(hi, b).value() + 1e-9);
    }

    #[test]
    fn de_morgan_duality(spec in tnorm(), a in score(), b in score()) {
        let norm = spec.build();
        // s(x, y) = 1 − t(1−x, 1−y) satisfies the co-norm boundary and
        // the generalized De Morgan law with standard negation.
        let dual = Dual(&*norm);
        prop_assert!(dual.s(a, Score::ZERO).approx_eq(a, 1e-9));
        let lhs = dual.s(a, b);
        let rhs = norm.t(a.negate(), b.negate()).negate();
        prop_assert!(lhs.approx_eq(rhs, 1e-9));
    }

    #[test]
    fn shipped_conorms_are_bounded_below_by_max(a in score(), b in score()) {
        let conorms: Vec<Box<dyn Conorm>> = vec![
            Box::new(Max),
            Box::new(ProbabilisticSum),
            Box::new(BoundedSum),
            Box::new(DrasticSum),
            Box::new(EinsteinSum),
        ];
        for s in &conorms {
            prop_assert!(s.s(a, b).value() >= a.max(b).value() - 1e-9, "{}", s.conorm_name());
        }
    }

    #[test]
    fn negations_are_involutive(x in score(), lambda in -0.9f64..4.0, w in 0.3f64..4.0) {
        let negs: Vec<Box<dyn Negation>> = vec![
            Box::new(Standard),
            Box::new(Sugeno::new(lambda).expect("lambda > -1")),
            Box::new(YagerNeg::new(w).expect("w > 0")),
        ];
        for n in &negs {
            prop_assert!(n.n(n.n(x)).approx_eq(x, 1e-7), "{}", n.negation_name());
        }
    }

    #[test]
    fn fw_weighting_is_a_convex_combination_of_prefix_values(
        xs in proptest::collection::vec(0.0f64..=1.0, 2..6),
        ratios in proptest::collection::vec(0.01f64..10.0, 2..6),
    ) {
        // The weighted value always lies between the min and max of the
        // prefix values f(x₁), f(x₁,x₂), … (they're convexly combined).
        let m = xs.len().min(ratios.len());
        let xs: Vec<Score> = xs[..m].iter().map(|&v| Score::clamped(v)).collect();
        let theta = Weighting::from_ratios(&ratios[..m]).expect("positive ratios");
        let value = weighted_combine(&Min, &theta, &xs).value();

        // Compute prefix values in weight-descending order.
        let mut pairs: Vec<(f64, Score)> = theta
            .weights()
            .iter()
            .copied()
            .zip(xs.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let mut prefix = Vec::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, x) in &pairs {
            prefix.push(*x);
            let v = Min.combine(&prefix).value();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        prop_assert!(value >= lo - 1e-9 && value <= hi + 1e-9);
    }

    #[test]
    fn fw_weighting_is_monotone_in_every_argument(
        xs in proptest::collection::vec(0.0f64..=1.0, 3..=3),
        bump in 0.0f64..=1.0,
        pos in 0usize..3,
        ratios in proptest::collection::vec(0.01f64..10.0, 3..=3),
    ) {
        let theta = Weighting::from_ratios(&ratios).expect("positive ratios");
        let base: Vec<Score> = xs.iter().map(|&v| Score::clamped(v)).collect();
        let mut bumped = base.clone();
        bumped[pos] = Score::clamped((xs[pos] + bump).min(1.0));
        let before = weighted_combine(&Min, &theta, &base).value();
        let after = weighted_combine(&Min, &theta, &bumped).value();
        prop_assert!(after >= before - 1e-9);
    }

    #[test]
    fn graded_set_ops_respect_zadeh_rules(
        grades_a in proptest::collection::vec(0.0f64..=1.0, 1..20),
        grades_b in proptest::collection::vec(0.0f64..=1.0, 1..20),
    ) {
        let a: GradedSet<usize> = grades_a
            .iter()
            .enumerate()
            .map(|(i, &g)| (i, Score::clamped(g)))
            .collect();
        let b: GradedSet<usize> = grades_b
            .iter()
            .enumerate()
            .map(|(i, &g)| (i, Score::clamped(g)))
            .collect();
        let inter = a.intersect(&b, &Min);
        let union = a.union(&b, &Max);
        for i in 0..grades_a.len().max(grades_b.len()) {
            let ga = a.grade_or_zero(&i);
            let gb = b.grade_or_zero(&i);
            prop_assert_eq!(inter.grade_or_zero(&i), ga.min(gb));
            prop_assert_eq!(union.grade_or_zero(&i), ga.max(gb));
        }
    }
}
