//! QBIC-style image search: color histograms, the quadratic-form
//! distance of eq. (1), and the \[HSE+95\] distance-bounding filter.
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use fuzzymm::index::filter_refine::FilterRefineIndex;
use fuzzymm::media::color::{ColorHistogram, Rgb};
use fuzzymm::media::synth::{SynthConfig, SyntheticDb};
use fuzzymm::prelude::*;

fn main() {
    // A synthetic image collection: each "image" is a 64-bin color
    // histogram plus a shape outline.
    let db = SyntheticDb::generate(&SynthConfig {
        count: 2_000,
        bins_per_channel: 4,
        seed: 7,
        ..SynthConfig::default()
    });
    println!(
        "database: {} images, k = {} color bins",
        db.len(),
        db.space.k()
    );

    // Query by color: which images are closest to pure red under the
    // quadratic-form distance (cross-bin similarity included)?
    let qf = QuadraticFormDistance::new(db.space.similarity_matrix());
    let red = ColorHistogram::pure(&db.space, Rgb::RED);
    let mut by_distance: Vec<(u64, f64)> = db
        .objects
        .iter()
        .map(|o| (o.id, qf.distance(&o.histogram, &red).expect("same space")))
        .collect();
    by_distance.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!("\nfive reddest images (exact quadratic form):");
    for (id, d) in by_distance.iter().take(5) {
        let dom = db.objects[*id as usize].dominant;
        println!(
            "  #{id:<5} d = {d:.4}  dominant rgb = ({:.2}, {:.2}, {:.2})",
            dom.r, dom.g, dom.b
        );
    }

    // The same search through the distance-bounding filter: identical
    // answers, a fraction of the O(k²) distance evaluations.
    let hists: Vec<ColorHistogram> = db.objects.iter().map(|o| o.histogram.clone()).collect();
    let index = FilterRefineIndex::build(&db.space, hists).expect("filter derivable");
    let (hits, stats) = index.knn(&red, 5).expect("query runs");
    println!("\nsame search via the 3-dim filter (zero false dismissals):");
    for (i, d) in &hits {
        println!("  #{i:<5} d = {d:.4}");
    }
    println!(
        "full distances computed: {} of {} ({:.1}% avoided)",
        stats.full_evaluations,
        stats.filter_evaluations,
        100.0 * stats.savings()
    );

    // Shape search: turning-function distance to a circle prototype.
    let circle = Polygon::ellipse(0.0, 0.0, 1.0, 1.0, 40).expect("valid ellipse");
    let mut round: Vec<(u64, f64)> = db
        .objects
        .iter()
        .map(|o| {
            (
                o.id,
                fuzzymm::media::shape::turning_distance(&o.shape, &circle, 64),
            )
        })
        .collect();
    round.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!("\nfive roundest images (turning-function distance):");
    for (id, d) in round.iter().take(5) {
        println!(
            "  #{id:<5} d = {d:.4}  family = {:?}",
            db.objects[*id as usize].family
        );
    }
}
