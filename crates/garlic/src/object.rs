//! Objects, values, and complex objects (§4.2).
//!
//! Garlic "deals with complex objects. … let us assume that the system
//! contains information about Advertisements, which are complex objects
//! with AdPhotos among their sub-objects. … this is complicated by the
//! fact that different multimedia objects can share the same component
//! objects." [`ComplexObject`] and [`SubObjectIndex`] model exactly
//! that: parents reference sub-objects by role, sub-objects may be
//! shared, and the index answers the question algorithm A₀ needs —
//! *which parents does this sub-object belong to?*

use std::collections::HashMap;
use std::fmt;

/// Global object identity (one per conceptual entity; per-subsystem
/// identities are translated by [`crate::idmap::IdMapper`]).
pub type Oid = u64;

/// A crisp attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text value.
    Text(String),
    /// Integer value.
    Int(i64),
}

impl Value {
    /// Text helper.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// A complex object: a parent entity whose roles reference sub-objects
/// (possibly shared with other parents).
#[derive(Debug, Clone)]
pub struct ComplexObject {
    /// The parent's global id.
    pub id: Oid,
    /// Role name → sub-object ids (e.g. `"AdPhoto" → [17, 21]`).
    pub sub_objects: HashMap<String, Vec<Oid>>,
}

impl ComplexObject {
    /// A parent with no sub-objects yet.
    pub fn new(id: Oid) -> ComplexObject {
        ComplexObject {
            id,
            sub_objects: HashMap::new(),
        }
    }

    /// Attaches a sub-object under `role`.
    pub fn attach(&mut self, role: impl Into<String>, sub: Oid) {
        self.sub_objects.entry(role.into()).or_default().push(sub);
    }

    /// The sub-objects under `role`.
    pub fn subs(&self, role: &str) -> &[Oid] {
        self.sub_objects.get(role).map_or(&[], Vec::as_slice)
    }
}

/// Reverse index from sub-object to parents, per role — the lookup
/// Garlic "may not have easily available (e.g., through an index)";
/// here we build it eagerly so the executor can lift sub-object grades
/// to parent grades.
#[derive(Debug, Clone, Default)]
pub struct SubObjectIndex {
    /// role → (sub oid → parent oids).
    parents: HashMap<String, HashMap<Oid, Vec<Oid>>>,
}

impl SubObjectIndex {
    /// Builds the reverse index over a set of complex objects.
    pub fn build<'a>(objects: impl IntoIterator<Item = &'a ComplexObject>) -> SubObjectIndex {
        let mut parents: HashMap<String, HashMap<Oid, Vec<Oid>>> = HashMap::new();
        for obj in objects {
            for (role, subs) in &obj.sub_objects {
                let role_map = parents.entry(role.clone()).or_default();
                for &sub in subs {
                    let v = role_map.entry(sub).or_default();
                    if !v.contains(&obj.id) {
                        v.push(obj.id);
                    }
                }
            }
        }
        for role_map in parents.values_mut() {
            for v in role_map.values_mut() {
                v.sort_unstable();
            }
        }
        SubObjectIndex { parents }
    }

    /// The parents of `sub` under `role` (empty if unknown).
    pub fn parents_of(&self, role: &str, sub: Oid) -> &[Oid] {
        self.parents
            .get(role)
            .and_then(|m| m.get(&sub))
            .map_or(&[], Vec::as_slice)
    }

    /// True if `sub` is shared by more than one parent under `role`.
    pub fn is_shared(&self, role: &str, sub: Oid) -> bool {
        self.parents_of(role, sub).len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_and_lookup() {
        let mut ad = ComplexObject::new(1);
        ad.attach("AdPhoto", 10);
        ad.attach("AdPhoto", 11);
        ad.attach("Logo", 20);
        assert_eq!(ad.subs("AdPhoto"), &[10, 11]);
        assert_eq!(ad.subs("Logo"), &[20]);
        assert!(ad.subs("Missing").is_empty());
    }

    #[test]
    fn reverse_index_finds_parents() {
        let mut a = ComplexObject::new(1);
        a.attach("AdPhoto", 10);
        let mut b = ComplexObject::new(2);
        b.attach("AdPhoto", 10); // shared photo
        b.attach("AdPhoto", 11);
        let idx = SubObjectIndex::build([&a, &b]);
        assert_eq!(idx.parents_of("AdPhoto", 10), &[1, 2]);
        assert_eq!(idx.parents_of("AdPhoto", 11), &[2]);
        assert!(idx.is_shared("AdPhoto", 10));
        assert!(!idx.is_shared("AdPhoto", 11));
        assert!(idx.parents_of("Logo", 10).is_empty());
    }

    #[test]
    fn duplicate_attachments_do_not_duplicate_parents() {
        let mut a = ComplexObject::new(1);
        a.attach("AdPhoto", 10);
        a.attach("AdPhoto", 10);
        let idx = SubObjectIndex::build([&a]);
        assert_eq!(idx.parents_of("AdPhoto", 10), &[1]);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::text("Beatles").to_string(), "'Beatles'");
        assert_eq!(Value::Int(7).to_string(), "7");
    }
}
