//! A generic bounded LRU map with lazy-deletion recency tracking.
//!
//! Extracted from the engine's [`crate::engine::GradeCache`] so the
//! same replacement machinery serves both cached grades and the page
//! frames of the paged store's buffer pool ([`crate::store`]). The
//! core keeps three cumulative counters — hits, misses, evictions —
//! and supports *pinned* entries: an entry the caller's `retain`
//! predicate claims is still in use is skipped (and refreshed) at
//! eviction time, the way a buffer pool must never drop a page a
//! reader still holds.
//!
//! Recency is tracked with the lazy-deletion idiom the grade cache
//! established: every touch pushes a `(key, stamp)` pair onto a queue,
//! and only a queue entry carrying the key's *current* stamp
//! represents its true recency; stale pairs are discarded when popped.
//! The queue is rebuilt from live entries when stale pairs dominate.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded LRU map: `capacity` entries, hit/miss/eviction counters,
/// and pin-aware eviction. Not thread-safe — callers wrap it in a
/// mutex (usually striped, as in [`crate::engine::StripedGradeCache`]
/// and the store's buffer pool).
#[derive(Debug)]
pub(crate) struct LruCore<K, V> {
    capacity: usize,
    /// key → (value, last-use stamp).
    entries: HashMap<K, (V, u64)>,
    /// Recency queue with lazy deletion: stale stamps are skipped at
    /// eviction time.
    queue: VecDeque<(K, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Copy, V: Clone> LruCore<K, V> {
    /// Creates a map holding at most `capacity` entries (0 disables
    /// insertion entirely).
    pub(crate) fn new(capacity: usize) -> LruCore<K, V> {
        LruCore {
            capacity,
            entries: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of entries currently held.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is held.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative lookups answered from the map.
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative lookups that found nothing.
    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative entries dropped to make room (lazy-deletion stale
    /// queue pairs are not evictions; only a live entry removed for
    /// capacity counts).
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every entry **and** resets all three counters. The
    /// counters describe the lifetime of the held content; content and
    /// counters reset together (see `GradeCache::clear` for the
    /// rationale).
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.queue.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Looks `key` up, refreshing its recency and counting a hit or a
    /// miss.
    pub(crate) fn get(&mut self, key: K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let found = match self.entries.get_mut(&key) {
            Some((value, stamp)) => {
                *stamp = tick;
                let value = value.clone();
                self.queue.push_back((key, tick));
                Some(value)
            }
            None => None,
        };
        if found.is_some() {
            self.hits += 1;
            self.maybe_compact();
        } else {
            self.misses += 1;
        }
        found
    }

    /// Peeks at `key` without touching recency or counters.
    pub(crate) fn peek(&self, key: K) -> Option<&V> {
        self.entries.get(&key).map(|(v, _)| v)
    }

    /// Inserts (or refreshes) an entry, evicting least-recently-used
    /// entries beyond capacity. An entry for which `retain` returns
    /// true is *pinned*: it is re-queued with fresh recency instead of
    /// evicted. If every entry is pinned the map temporarily exceeds
    /// capacity — a buffer pool must never drop a frame a reader still
    /// holds.
    pub(crate) fn insert_with(&mut self, key: K, value: V, retain: impl Fn(&V) -> bool) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.entries.insert(key, (value, self.tick));
        self.queue.push_back((key, self.tick));
        let mut pinned_skips = 0usize;
        while self.entries.len() > self.capacity {
            let Some((old, stamp)) = self.queue.pop_front() else {
                break;
            };
            // Lazy deletion: only a queue entry carrying the key's
            // *current* stamp represents its true recency.
            let pinned = match self.entries.get(&old) {
                Some(&(ref value, s)) if s == stamp => retain(value),
                _ => continue,
            };
            if pinned {
                // Refresh the pinned entry's recency and move on; give
                // up once we have cycled past every live entry, so an
                // all-pinned map cannot spin forever.
                self.tick += 1;
                if let Some(entry) = self.entries.get_mut(&old) {
                    entry.1 = self.tick;
                }
                self.queue.push_back((old, self.tick));
                pinned_skips += 1;
                if pinned_skips > self.entries.len() {
                    break;
                }
            } else {
                self.entries.remove(&old);
                self.evictions += 1;
            }
        }
        self.maybe_compact();
    }

    /// Inserts with no pinning.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        self.insert_with(key, value, |_| false);
    }

    /// Current length of the lazy recency queue (tests assert the
    /// compaction bound).
    #[cfg(test)]
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Bounds the lazy queue: when stale entries dominate, rebuild it
    /// from the live entries in recency order.
    fn maybe_compact(&mut self) {
        if self.queue.len() <= self.capacity.saturating_mul(4) + 8 {
            return;
        }
        let mut live: Vec<(K, u64)> = self
            .entries
            .iter()
            .map(|(&key, &(_, stamp))| (key, stamp))
            .collect();
        live.sort_by_key(|&(_, stamp)| stamp);
        self.queue = live.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_counts_hits_and_misses() {
        let mut lru: LruCore<u32, u32> = LruCore::new(4);
        assert_eq!(lru.get(1), None);
        lru.insert(1, 10);
        assert_eq!(lru.get(1), Some(10));
        assert_eq!((lru.hits(), lru.misses()), (1, 1));
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let mut lru: LruCore<u32, u32> = LruCore::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(1), Some(10)); // refresh 1 → 2 is LRU
        lru.insert(3, 30);
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.get(2), None, "LRU entry 2 must be the one evicted");
        assert_eq!(lru.get(1), Some(10));
        assert_eq!(lru.get(3), Some(30));
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut lru: LruCore<u32, u32> = LruCore::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        // Pin value 10: inserting a third entry must evict 2, not 1,
        // even though 1 is least recently used.
        lru.insert_with(3, 30, |&v| v == 10);
        assert_eq!(lru.peek(1), Some(&10), "pinned entry must survive");
        assert_eq!(lru.peek(2), None);
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn all_pinned_exceeds_capacity_without_spinning() {
        let mut lru: LruCore<u32, u32> = LruCore::new(2);
        lru.insert_with(1, 10, |_| true);
        lru.insert_with(2, 20, |_| true);
        lru.insert_with(3, 30, |_| true);
        assert_eq!(lru.len(), 3, "all pinned: capacity temporarily exceeded");
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn clear_resets_counters_and_content() {
        let mut lru: LruCore<u32, u32> = LruCore::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        let _ = lru.get(3);
        let _ = lru.get(99);
        assert!(lru.hits() > 0 && lru.misses() > 0 && lru.evictions() > 0);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!((lru.hits(), lru.misses(), lru.evictions()), (0, 0, 0));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut lru: LruCore<u32, u32> = LruCore::new(0);
        lru.insert(1, 10);
        assert!(lru.is_empty());
        assert_eq!(lru.get(1), None);
    }

    #[test]
    fn queue_compaction_preserves_recency() {
        let mut lru: LruCore<u32, u32> = LruCore::new(4);
        for i in 0..4 {
            lru.insert(i, i);
        }
        // Hammer one key until the lazy queue compacts, then verify
        // recency order is still honoured at the next eviction.
        for _ in 0..100 {
            let _ = lru.get(0);
        }
        lru.insert(100, 100);
        assert_eq!(lru.peek(0), Some(&0), "hot key must survive");
        assert_eq!(lru.evictions(), 1);
    }
}
