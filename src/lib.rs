//! # fuzzymm — Fuzzy Queries in Multimedia Database Systems
//!
//! A full Rust reproduction of Ronald Fagin, *"Fuzzy Queries in
//! Multimedia Database Systems"*, PODS 1998: graded sets and scoring
//! functions, Fagin's algorithm A₀ and its relatives over
//! sorted/random-access subsystems, the Fagin–Wimmers weighting
//! formula, QBIC-style feature distances with distance-bounding
//! filters, multidimensional access methods, and a Garlic-like
//! middleware with planner and executor.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`core`] — scores, graded sets, scoring functions, weights, query AST;
//! * [`middleware`] — the access model, cost accounting, and top-k
//!   algorithms (naive, A₀, max-merge, pruned A₀, TA, CG filters);
//! * [`media`] — color histograms, quadratic-form distance, distance
//!   bounding, shape descriptors, synthetic data;
//! * [`index`] — R-tree, grid file, linear scan, precomputed
//!   distances, filter-and-refine;
//! * [`garlic`] — repositories, catalog, planner, executor, SQL-ish
//!   syntax, demos.
//!
//! ```
//! use fuzzymm::garlic::demo::cd_store;
//! use fuzzymm::garlic::sql::parse;
//!
//! let store = cd_store(40, 7);
//! let stmt = parse("SELECT TOP 3 WHERE Artist='Beatles' AND Color~'red'").unwrap();
//! let hits = store.top_k(&stmt.query, stmt.k).unwrap();
//! assert_eq!(hits.answers.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub use fmdb_core as core;
pub use fmdb_garlic as garlic;
pub use fmdb_index as index;
pub use fmdb_media as media;
pub use fmdb_middleware as middleware;

/// One-stop prelude with the most commonly used items (curated, since
/// several member preludes export overlapping names like `Oid`).
pub mod prelude {
    pub use fmdb_core::graded_set::GradedSet;
    pub use fmdb_core::query::{AtomicQuery, Query, Target};
    pub use fmdb_core::score::{Score, ScoredObject};
    pub use fmdb_core::scoring::tnorms::{Min, Product};
    pub use fmdb_core::scoring::{Conorm, ConormScoring, ScoringFunction, TNorm};
    pub use fmdb_core::weights::{weighted_combine, Weighted, Weighting};
    pub use fmdb_garlic::catalog::Catalog;
    pub use fmdb_garlic::cost::CostEstimator;
    pub use fmdb_garlic::demo::{ad_database, cd_store};
    pub use fmdb_garlic::executor::{AlgoChoice, Garlic, QueryCursor, QueryResult};
    pub use fmdb_garlic::planner::PlanKind;
    pub use fmdb_garlic::repository::{QbicRepository, TableRepository};
    pub use fmdb_garlic::sql::parse;
    pub use fmdb_index::prelude::{
        FilterRefineIndex, GridFile, LinearScan, PrecomputedDistances, QuadTree, RTree,
    };
    pub use fmdb_media::prelude::{
        ColorHistogram, ColorSpace, HistogramDistance, Polygon, QuadraticFormDistance, Rgb,
        SynthConfig, SyntheticDb,
    };
    pub use fmdb_middleware::prelude::{
        AccessStats, Algo, AlgoError, Algorithm, ApproxNra, ApproxTa, Approximation,
        CombinedAlgorithm, CostModel, Engine, EngineConfig, ExecPolicy, FaSession, FaginsAlgorithm,
        GradeCache, GradedSource, MaxMerge, Naive, Nra, Oid, OptimalityOracle, OwnedFaSession,
        PagedSource, PagedStore, PrunedFa, ShardPolicy, SharedScoring, SourceInfo, StoreError,
        ThresholdAlgorithm, TopKAlgorithm, TopKQuery, TopKRequest, TopKResult, ValidatingSource,
        VecSource,
    };
    pub use fmdb_middleware::workload::independent_uniform;
}
