//! An R-tree with R*-style splits \[BKSS90\] and best-first k-NN search.
//!
//! §2.1: "Another popular multidimensional indexing method is R-trees
//! \[BKSS90\]. These tend to be more robust for higher dimensions, at
//! least for dimensions up to around 20 \[Ot92\]." Experiment E8 measures
//! precisely that degradation: node accesses per k-NN query as the
//! dimension grows (the "dimensionality curse").
//!
//! Implementation notes: points-only entries (feature vectors), the
//! R*-tree ChooseSubtree (minimum overlap enlargement at leaf level,
//! minimum volume enlargement above), the R*-tree topological split
//! (choose axis by minimum margin sum, then the distribution with
//! minimum overlap), and R*-style **forced reinsertion** at the leaf
//! level (on first overflow, the 30% of entries farthest from the node
//! center are re-inserted from the root instead of splitting).
//! k-NN is the Hjaltason–Samet best-first traversal with a priority
//! queue over MINDIST, plus a streaming variant ([`RTree::nearest_iter`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::geometry::{dist2, validate_point, GeometryError, Mbr};

/// Maximum entries per node.
const MAX_ENTRIES: usize = 16;
/// Minimum entries per node after a split (R* recommends ~40% of max).
const MIN_ENTRIES: usize = 6;

/// An opaque record id stored with each point.
pub type ItemId = u64;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        mbr: Mbr,
        entries: Vec<(Vec<f64>, ItemId)>,
    },
    Internal {
        mbr: Mbr,
        children: Vec<Node>,
    },
}

impl Node {
    fn mbr(&self) -> &Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => mbr,
        }
    }

    fn recompute_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                let mut m = Mbr::of_point(&entries[0].0);
                for (p, _) in entries.iter().skip(1) {
                    m.expand_point(p);
                }
                *mbr = m;
            }
            Node::Internal { mbr, children } => {
                let mut m = children[0].mbr().clone();
                for c in children.iter().skip(1) {
                    m.expand_mbr(c.mbr());
                }
                *mbr = m;
            }
        }
    }
}

/// Per-query access statistics: the index-side analogue of the paper's
/// database access cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexAccess {
    /// Tree nodes touched (≈ page reads in a disk-resident tree).
    pub nodes_visited: u64,
    /// Exact point-distance computations performed.
    pub distance_computations: u64,
}

/// A k-NN search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// The stored item id.
    pub id: ItemId,
    /// Euclidean distance from the query point.
    pub distance: f64,
}

/// An in-memory R-tree over d-dimensional points.
#[derive(Debug, Clone)]
pub struct RTree {
    dim: usize,
    root: Option<Node>,
    len: usize,
    forced_reinsert: bool,
}

impl RTree {
    /// An empty tree for points of dimension `dim`, with R*-style
    /// forced reinsertion enabled.
    pub fn new(dim: usize) -> Result<RTree, GeometryError> {
        RTree::with_options(dim, true)
    }

    /// An empty tree with forced reinsertion toggled explicitly
    /// (disabling it isolates the split policy for comparisons).
    pub fn with_options(dim: usize, forced_reinsert: bool) -> Result<RTree, GeometryError> {
        if dim == 0 {
            return Err(GeometryError::EmptyDimension);
        }
        Ok(RTree {
            dim,
            root: None,
            len: 0,
            forced_reinsert,
        })
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no point is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree height (0 for the empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut node = self.root.as_ref();
        while let Some(n) = node {
            h += 1;
            node = match n {
                Node::Internal { children, .. } => children.first(),
                Node::Leaf { .. } => None,
            };
        }
        h
    }

    /// Inserts a point with its id.
    pub fn insert(&mut self, point: &[f64], id: ItemId) -> Result<(), GeometryError> {
        validate_point(point)?;
        if point.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        self.len += 1;
        self.insert_entry(point.to_vec(), id, self.forced_reinsert);
        Ok(())
    }

    /// Core insertion; `allow_reinsert` is dropped for the re-inserted
    /// entries themselves so reinsertion cannot cascade (the R*-tree's
    /// once-per-level rule, restricted to the leaf level here).
    fn insert_entry(&mut self, point: Vec<f64>, id: ItemId, allow_reinsert: bool) {
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    mbr: Mbr::of_point(&point),
                    entries: vec![(point, id)],
                });
            }
            Some(mut root) => {
                let is_root_leaf = matches!(root, Node::Leaf { .. });
                match insert_rec(&mut root, &point, id, allow_reinsert && !is_root_leaf) {
                    InsertOutcome::Done => self.root = Some(root),
                    InsertOutcome::Split(sibling) => {
                        // Root split: grow the tree.
                        let mut mbr = root.mbr().clone();
                        mbr.expand_mbr(sibling.mbr());
                        self.root = Some(Node::Internal {
                            mbr,
                            children: vec![root, sibling],
                        });
                    }
                    InsertOutcome::Reinsert(evicted) => {
                        // Ancestor MBRs may now over-cover (correct but
                        // loose); the reinsertions below tighten packing
                        // where it matters — the leaves.
                        self.root = Some(root);
                        for (p, pid) in evicted {
                            self.insert_entry(p, pid, false);
                        }
                    }
                }
            }
        }
    }

    /// The `k` nearest stored points to `query`, with access metering.
    pub fn knn(
        &self,
        query: &[f64],
        k: usize,
    ) -> Result<(Vec<Neighbor>, IndexAccess), GeometryError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        let mut access = IndexAccess::default();
        let mut result: Vec<Neighbor> = Vec::new();
        let Some(root) = &self.root else {
            return Ok((result, access));
        };
        if k == 0 {
            return Ok((result, access));
        }

        // Best-first: a min-heap over MINDIST² of pending nodes.
        struct Pending<'a> {
            key: f64,
            node: &'a Node,
        }
        impl PartialEq for Pending<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key
            }
        }
        impl Eq for Pending<'_> {}
        impl PartialOrd for Pending<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Pending<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap; keys are finite by validation.
                other.key.total_cmp(&self.key)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Pending {
            key: root.mbr().min_dist2(query),
            node: root,
        });
        // Current k-th best distance² (∞ until k found).
        let mut kth = f64::INFINITY;
        while let Some(Pending { key, node }) = heap.pop() {
            if key > kth {
                break; // No remaining node can improve the result.
            }
            access.nodes_visited += 1;
            match node {
                Node::Leaf { entries, .. } => {
                    for (p, id) in entries {
                        access.distance_computations += 1;
                        let d2 = dist2(p, query);
                        if d2 < kth || result.len() < k {
                            result.push(Neighbor {
                                id: *id,
                                distance: d2.sqrt(),
                            });
                            result.sort_by(|a, b| {
                                a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id))
                            });
                            result.truncate(k);
                            if result.len() == k {
                                kth = result[k - 1].distance * result[k - 1].distance;
                            }
                        }
                    }
                }
                Node::Internal { children, .. } => {
                    for c in children {
                        let d = c.mbr().min_dist2(query);
                        if d <= kth {
                            heap.push(Pending { key: d, node: c });
                        }
                    }
                }
            }
        }
        Ok((result, access))
    }

    /// A **streaming** nearest-neighbor iterator (Hjaltason–Samet
    /// incremental search): yields stored points strictly in ascending
    /// distance from `query`, lazily — exactly what a filter-and-refine
    /// consumer needs, since it cannot know in advance how many
    /// candidates the refine step will reject.
    ///
    /// §2.1 anticipates this use: "we could potentially have a
    /// multidimensional index on short color vectors."
    pub fn nearest_iter<'a>(&'a self, query: &[f64]) -> Result<NearestIter<'a>, GeometryError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        let mut heap = BinaryHeap::new();
        if let Some(root) = &self.root {
            heap.push(IterEntry {
                key: root.mbr().min_dist2(query),
                kind: EntryKind::Node(root),
            });
        }
        Ok(NearestIter {
            query: query.to_vec(),
            heap,
            access: IndexAccess::default(),
        })
    }

    /// All items whose point lies within `radius` of `query`.
    pub fn range(
        &self,
        query: &[f64],
        radius: f64,
    ) -> Result<(Vec<Neighbor>, IndexAccess), GeometryError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        let mut access = IndexAccess::default();
        let mut out = Vec::new();
        let r2 = radius * radius;
        let mut stack: Vec<&Node> = self.root.iter().collect();
        while let Some(node) = stack.pop() {
            if node.mbr().min_dist2(query) > r2 {
                continue;
            }
            access.nodes_visited += 1;
            match node {
                Node::Leaf { entries, .. } => {
                    for (p, id) in entries {
                        access.distance_computations += 1;
                        let d2 = dist2(p, query);
                        if d2 <= r2 {
                            out.push(Neighbor {
                                id: *id,
                                distance: d2.sqrt(),
                            });
                        }
                    }
                }
                Node::Internal { children, .. } => stack.extend(children.iter()),
            }
        }
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        Ok((out, access))
    }
}

enum EntryKind<'a> {
    Node(&'a Node),
    Point(ItemId),
}

struct IterEntry<'a> {
    /// MINDIST² for nodes, exact distance² for points.
    key: f64,
    kind: EntryKind<'a>,
}

impl PartialEq for IterEntry<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for IterEntry<'_> {}
impl PartialOrd for IterEntry<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IterEntry<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the smallest key.
        other
            .key
            .total_cmp(&self.key)
            // Yield points before nodes at equal keys so results are
            // emitted as early as possible.
            .then_with(|| match (&self.kind, &other.kind) {
                (EntryKind::Point(a), EntryKind::Point(b)) => b.cmp(a),
                (EntryKind::Point(_), EntryKind::Node(_)) => Ordering::Greater,
                (EntryKind::Node(_), EntryKind::Point(_)) => Ordering::Less,
                (EntryKind::Node(_), EntryKind::Node(_)) => Ordering::Equal,
            })
    }
}

/// Streaming nearest-neighbor cursor over an [`RTree`]; see
/// [`RTree::nearest_iter`].
pub struct NearestIter<'a> {
    query: Vec<f64>,
    heap: BinaryHeap<IterEntry<'a>>,
    access: IndexAccess,
}

// The frontier heap borrows tree internals with no useful rendering;
// an opaque summary satisfies `missing_debug_implementations`.
impl std::fmt::Debug for NearestIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NearestIter")
            .field("dims", &self.query.len())
            .field("frontier", &self.heap.len())
            .finish_non_exhaustive()
    }
}

impl NearestIter<'_> {
    /// Accesses performed so far (grows as the cursor advances).
    pub fn access(&self) -> IndexAccess {
        self.access
    }
}

impl Iterator for NearestIter<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Neighbor> {
        while let Some(IterEntry { key, kind }) = self.heap.pop() {
            match kind {
                EntryKind::Point(id) => {
                    return Some(Neighbor {
                        id,
                        distance: key.sqrt(),
                    });
                }
                EntryKind::Node(node) => {
                    self.access.nodes_visited += 1;
                    let _ = key;
                    match node {
                        Node::Leaf { entries, .. } => {
                            for (p, id) in entries {
                                self.access.distance_computations += 1;
                                self.heap.push(IterEntry {
                                    key: dist2(p, &self.query),
                                    kind: EntryKind::Point(*id),
                                });
                            }
                        }
                        Node::Internal { children, .. } => {
                            for c in children {
                                self.heap.push(IterEntry {
                                    key: c.mbr().min_dist2(&self.query),
                                    kind: EntryKind::Node(c),
                                });
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

/// What an insertion did to a subtree.
enum InsertOutcome {
    /// Absorbed without structural change.
    Done,
    /// The node split; the new sibling must be attached by the parent.
    Split(Node),
    /// Forced reinsertion: these evicted entries must be re-inserted
    /// from the root (R* \[BKSS90\]: on first overflow, evict the
    /// entries farthest from the node center instead of splitting —
    /// they often land in better-fitting neighbors).
    Reinsert(Vec<(Vec<f64>, ItemId)>),
}

/// Fraction of an overflowing leaf evicted by forced reinsertion
/// (R* recommends 30%).
const REINSERT_FRACTION: f64 = 0.3;

/// Recursive insert.
fn insert_rec(node: &mut Node, point: &[f64], id: ItemId, allow_reinsert: bool) -> InsertOutcome {
    match node {
        Node::Leaf { mbr, entries } => {
            entries.push((point.to_vec(), id));
            mbr.expand_point(point);
            if entries.len() <= MAX_ENTRIES {
                return InsertOutcome::Done;
            }
            if allow_reinsert {
                InsertOutcome::Reinsert(evict_farthest(node))
            } else {
                InsertOutcome::Split(split_leaf(node))
            }
        }
        Node::Internal { mbr, children } => {
            mbr.expand_point(point);
            let chosen = choose_subtree(children, point);
            match insert_rec(&mut children[chosen], point, id, allow_reinsert) {
                InsertOutcome::Done => InsertOutcome::Done,
                InsertOutcome::Reinsert(evicted) => InsertOutcome::Reinsert(evicted),
                InsertOutcome::Split(sibling) => {
                    children.push(sibling);
                    if children.len() > MAX_ENTRIES {
                        InsertOutcome::Split(split_internal(node))
                    } else {
                        InsertOutcome::Done
                    }
                }
            }
        }
    }
}

/// Removes the ~30% of a leaf's entries farthest from its MBR center
/// and shrinks the MBR; the caller re-inserts them from the root.
fn evict_farthest(node: &mut Node) -> Vec<(Vec<f64>, ItemId)> {
    let Node::Leaf { entries, .. } = node else {
        unreachable!("evict_farthest on internal node");
    };
    let center: Vec<f64> = {
        let mut mbr = Mbr::of_point(&entries[0].0);
        for (p, _) in entries.iter().skip(1) {
            mbr.expand_point(p);
        }
        mbr.min()
            .iter()
            .zip(mbr.max())
            .map(|(a, b)| (a + b) / 2.0)
            .collect()
    };
    entries.sort_by(|a, b| dist2(&a.0, &center).total_cmp(&dist2(&b.0, &center)));
    let evict_count = (((entries.len() as f64) * REINSERT_FRACTION) as usize).max(1);
    let keep = entries.len() - evict_count;
    let evicted = entries.split_off(keep);
    node.recompute_mbr();
    evicted
}

/// R*-tree ChooseSubtree: into leaves, minimize overlap enlargement;
/// higher up, minimize volume enlargement (ties: smaller volume).
fn choose_subtree(children: &[Node], point: &[f64]) -> usize {
    let point_mbr = Mbr::of_point(point);
    let leaf_level = matches!(children[0], Node::Leaf { .. });
    let mut best = 0;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, c) in children.iter().enumerate() {
        let enlarged = c.mbr().union(&point_mbr);
        let vol_enl = enlarged.volume() - c.mbr().volume();
        let key = if leaf_level {
            // Overlap enlargement against the other children.
            let mut overlap_delta = 0.0;
            for (j, other) in children.iter().enumerate() {
                if i != j {
                    overlap_delta += enlarged.overlap(other.mbr()) - c.mbr().overlap(other.mbr());
                }
            }
            (overlap_delta, vol_enl, c.mbr().volume())
        } else {
            (vol_enl, c.mbr().volume(), 0.0)
        };
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// R*-style split of an overflowing leaf. Returns the new sibling.
fn split_leaf(node: &mut Node) -> Node {
    let Node::Leaf { entries, .. } = node else {
        unreachable!("split_leaf on internal node");
    };
    let items = std::mem::take(entries);
    let (left, right) = rstar_partition(items, |p| &p.0);
    *node = Node::Leaf {
        mbr: Mbr::of_point(&left[0].0),
        entries: left,
    };
    node.recompute_mbr();
    let mut sibling = Node::Leaf {
        mbr: Mbr::of_point(&right[0].0),
        entries: right,
    };
    sibling.recompute_mbr();
    sibling
}

/// R*-style split of an overflowing internal node.
fn split_internal(node: &mut Node) -> Node {
    let Node::Internal { children, .. } = node else {
        unreachable!("split_internal on leaf");
    };
    let items = std::mem::take(children);
    // Partition children by the center of their MBRs.
    let centers: Vec<Vec<f64>> = items
        .iter()
        .map(|c| {
            c.mbr()
                .min()
                .iter()
                .zip(c.mbr().max())
                .map(|(a, b)| (a + b) / 2.0)
                .collect()
        })
        .collect();
    let mut tagged: Vec<(Vec<f64>, Node)> = centers.into_iter().zip(items).collect();
    let dim = tagged[0].0.len();
    let (axis, split_at) = choose_split(&mut tagged, dim, |t| &t.0);
    tagged.sort_by(|a, b| a.0[axis].total_cmp(&b.0[axis]));
    let right_items: Vec<Node> = tagged
        .split_off(split_at)
        .into_iter()
        .map(|t| t.1)
        .collect();
    let left_items: Vec<Node> = tagged.into_iter().map(|t| t.1).collect();

    let rebuild = |items: Vec<Node>| -> Node {
        let mut mbr = items[0].mbr().clone();
        for c in items.iter().skip(1) {
            mbr.expand_mbr(c.mbr());
        }
        Node::Internal {
            mbr,
            children: items,
        }
    };
    let sibling = rebuild(right_items);
    *node = rebuild(left_items);
    sibling
}

/// Shared R* partition for point-keyed items: choose the split axis by
/// minimum margin sum, then the distribution with minimum overlap
/// (ties: minimum total volume); returns the two sides.
fn rstar_partition<T>(mut items: Vec<T>, key: impl Fn(&T) -> &[f64] + Copy) -> (Vec<T>, Vec<T>) {
    let dim = key(&items[0]).len();
    let (axis, split_at) = choose_split(&mut items, dim, key);
    items.sort_by(|a, b| key(a)[axis].total_cmp(&key(b)[axis]));
    let right = items.split_off(split_at);
    (items, right)
}

/// Chooses `(axis, split_index)` for a set of point-keyed items.
fn choose_split<T>(
    items: &mut [T],
    dim: usize,
    key: impl Fn(&T) -> &[f64] + Copy,
) -> (usize, usize) {
    let n = items.len();
    let lo = MIN_ENTRIES.min(n.saturating_sub(1)).max(1);
    let hi = n - lo;
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dim {
        items.sort_by(|a, b| key(a)[axis].total_cmp(&key(b)[axis]));
        let mut margin = 0.0;
        for split in lo..=hi {
            let (ml, mr) = side_mbrs(items, split, key);
            margin += ml.margin() + mr.margin();
        }
        if margin < best_margin {
            best_margin = margin;
            best_axis = axis;
        }
    }
    items.sort_by(|a, b| key(a)[best_axis].total_cmp(&key(b)[best_axis]));
    let mut best_split = lo;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for split in lo..=hi {
        let (ml, mr) = side_mbrs(items, split, key);
        let cand = (ml.overlap(&mr), ml.volume() + mr.volume());
        if cand < best_key {
            best_key = cand;
            best_split = split;
        }
    }
    (best_axis, best_split)
}

fn side_mbrs<T>(items: &[T], split: usize, key: impl Fn(&T) -> &[f64]) -> (Mbr, Mbr) {
    let mut ml = Mbr::of_point(key(&items[0]));
    for item in &items[1..split] {
        ml.expand_point(key(item));
    }
    let mut mr = Mbr::of_point(key(&items[split]));
    for item in &items[split + 1..] {
        mr.expand_point(key(item));
    }
    (ml, mr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect()
    }

    fn brute_knn(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = points
            .iter()
            .enumerate()
            .map(|(i, p)| Neighbor {
                id: i as ItemId,
                distance: dist2(p, query).sqrt(),
            })
            .collect();
        all.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap()
                .then(a.id.cmp(&b.id))
        });
        all.truncate(k);
        all
    }

    #[test]
    fn construction_and_validation() {
        assert!(RTree::new(0).is_err());
        let mut t = RTree::new(2).unwrap();
        assert!(t.is_empty());
        assert!(matches!(
            t.insert(&[1.0], 0),
            Err(GeometryError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(t.insert(&[1.0, f64::NAN], 0).is_err());
        t.insert(&[0.5, 0.5], 7).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn knn_matches_brute_force() {
        for dim in [2, 3, 8] {
            let points = random_points(500, dim, 99);
            let mut tree = RTree::new(dim).unwrap();
            for (i, p) in points.iter().enumerate() {
                tree.insert(p, i as ItemId).unwrap();
            }
            let queries = random_points(20, dim, 7);
            for q in &queries {
                for k in [1, 5, 17] {
                    let (got, _) = tree.knn(q, k).unwrap();
                    let expect = brute_knn(&points, q, k);
                    let got_ids: Vec<_> = got.iter().map(|n| n.id).collect();
                    let expect_ids: Vec<_> = expect.iter().map(|n| n.id).collect();
                    assert_eq!(got_ids, expect_ids, "dim={dim} k={k}");
                }
            }
        }
    }

    #[test]
    fn knn_on_empty_and_small_trees() {
        let tree = RTree::new(2).unwrap();
        let (res, _) = tree.knn(&[0.0, 0.0], 3).unwrap();
        assert!(res.is_empty());

        let mut one = RTree::new(2).unwrap();
        one.insert(&[1.0, 1.0], 42).unwrap();
        let (res, _) = one.knn(&[0.0, 0.0], 3).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, 42);
        let (res0, _) = one.knn(&[0.0, 0.0], 0).unwrap();
        assert!(res0.is_empty());
    }

    #[test]
    fn range_query_matches_brute_force() {
        let points = random_points(400, 3, 5);
        let mut tree = RTree::new(3).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as ItemId).unwrap();
        }
        let q = [0.5, 0.5, 0.5];
        let r = 0.3;
        let (got, _) = tree.range(&q, r).unwrap();
        let expect: Vec<ItemId> = {
            let mut v: Vec<(f64, ItemId)> = points
                .iter()
                .enumerate()
                .filter(|(_, p)| dist2(p, &q).sqrt() <= r)
                .map(|(i, p)| (dist2(p, &q).sqrt(), i as ItemId))
                .collect();
            v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            v.into_iter().map(|(_, id)| id).collect()
        };
        let got_ids: Vec<_> = got.iter().map(|n| n.id).collect();
        assert_eq!(got_ids, expect);
    }

    #[test]
    fn knn_prunes_nodes_in_low_dimensions() {
        let points = random_points(2000, 2, 11);
        let mut tree = RTree::new(2).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as ItemId).unwrap();
        }
        let (_, access) = tree.knn(&[0.5, 0.5], 5).unwrap();
        // A full scan would compute 2000 distances; the tree must prune
        // hard in 2-D.
        assert!(access.distance_computations < 500, "no pruning: {access:?}");
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let points = random_points(2000, 2, 13);
        let mut tree = RTree::new(2).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as ItemId).unwrap();
        }
        let h = tree.height();
        assert!((2..=6).contains(&h), "height {h}");
        assert_eq!(tree.len(), 2000);
    }

    #[test]
    fn nearest_iter_streams_in_ascending_distance() {
        let points = random_points(600, 3, 41);
        let mut tree = RTree::new(3).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as ItemId).unwrap();
        }
        let q = [0.4, 0.6, 0.5];
        let collected: Vec<Neighbor> = tree.nearest_iter(&q).unwrap().collect();
        assert_eq!(collected.len(), 600);
        for w in collected.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        // The prefix equals batch k-NN.
        let (batch, _) = tree.knn(&q, 15).unwrap();
        let prefix_ids: Vec<ItemId> = collected.iter().take(15).map(|n| n.id).collect();
        let batch_d: Vec<f64> = batch.iter().map(|n| n.distance).collect();
        let prefix_d: Vec<f64> = collected.iter().take(15).map(|n| n.distance).collect();
        for (a, b) in batch_d.iter().zip(&prefix_d) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(prefix_ids.len(), 15);
    }

    #[test]
    fn nearest_iter_is_lazy_about_node_accesses() {
        let points = random_points(4000, 2, 43);
        let mut tree = RTree::new(2).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as ItemId).unwrap();
        }
        let mut iter = tree.nearest_iter(&[0.5, 0.5]).unwrap();
        let _ = iter.by_ref().take(3).count();
        let after_three = iter.access();
        let _ = iter.by_ref().take(500).count();
        let after_more = iter.access();
        assert!(
            after_three.nodes_visited < after_more.nodes_visited,
            "laziness: {after_three:?} vs {after_more:?}"
        );
        assert!(after_three.distance_computations < 1000);
    }

    #[test]
    fn nearest_iter_on_empty_tree_is_empty() {
        let tree = RTree::new(2).unwrap();
        assert_eq!(tree.nearest_iter(&[0.1, 0.2]).unwrap().count(), 0);
        assert!(tree.nearest_iter(&[0.1]).is_err());
    }

    #[test]
    fn forced_reinsertion_preserves_correctness() {
        // Clustered data stresses reinsertion; answers must still match
        // brute force exactly.
        let mut rng_points = Vec::new();
        for cluster in 0..8 {
            let cx = (cluster as f64) / 8.0;
            for p in random_points(60, 2, cluster as u64) {
                rng_points.push(vec![cx + p[0] * 0.05, p[1] * 0.05]);
            }
        }
        let mut with = RTree::with_options(2, true).unwrap();
        let mut without = RTree::with_options(2, false).unwrap();
        for (i, p) in rng_points.iter().enumerate() {
            with.insert(p, i as ItemId).unwrap();
            without.insert(p, i as ItemId).unwrap();
        }
        assert_eq!(with.len(), rng_points.len());
        for q in random_points(10, 2, 77) {
            let expect = brute_knn(&rng_points, &q, 9);
            for tree in [&with, &without] {
                let (got, _) = tree.knn(&q, 9).unwrap();
                let got_ids: Vec<_> = got.iter().map(|n| n.id).collect();
                let exp_ids: Vec<_> = expect.iter().map(|n| n.id).collect();
                assert_eq!(got_ids, exp_ids);
            }
        }
    }

    #[test]
    fn forced_reinsertion_improves_or_matches_packing() {
        // Query-time node accesses on clustered data, averaged over
        // queries: the R* reinsertion should not make pruning worse.
        let points = random_points(3000, 3, 21);
        let mut with = RTree::with_options(3, true).unwrap();
        let mut without = RTree::with_options(3, false).unwrap();
        for (i, p) in points.iter().enumerate() {
            with.insert(p, i as ItemId).unwrap();
            without.insert(p, i as ItemId).unwrap();
        }
        let mut with_nodes = 0u64;
        let mut without_nodes = 0u64;
        for q in random_points(25, 3, 5) {
            with_nodes += with.knn(&q, 10).unwrap().1.nodes_visited;
            without_nodes += without.knn(&q, 10).unwrap().1.nodes_visited;
        }
        assert!(
            (with_nodes as f64) <= without_nodes as f64 * 1.15,
            "reinsertion should not noticeably hurt: {with_nodes} vs {without_nodes}"
        );
    }

    #[test]
    fn duplicate_points_are_allowed() {
        let mut tree = RTree::new(2).unwrap();
        for i in 0..50 {
            tree.insert(&[0.5, 0.5], i).unwrap();
        }
        let (res, _) = tree.knn(&[0.5, 0.5], 10).unwrap();
        assert_eq!(res.len(), 10);
        assert!(res.iter().all(|n| n.distance == 0.0));
    }
}
