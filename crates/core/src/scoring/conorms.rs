//! Triangular co-norms: the classic disjunction scoring functions.
//!
//! Each co-norm here is the De Morgan dual of a t-norm in
//! [`crate::scoring::tnorms`] under the standard negation `1 − x`
//! (Bonissone–Decker \[BD86\], quoted in §3 of the paper). The duality is
//! verified by tests below and by the property suite.

use crate::score::Score;
use crate::scoring::Conorm;

/// Zadeh's standard disjunction: `s(x, y) = max(x, y)`.
///
/// By Theorem 3.1 it is the unique monotone, equivalence-preserving
/// scoring function for ∨. It is the dual of min.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

impl Conorm for Max {
    #[inline]
    fn s(&self, a: Score, b: Score) -> Score {
        a.max(b)
    }

    fn conorm_name(&self) -> String {
        "max".to_owned()
    }
}

/// The probabilistic sum: `s(x, y) = x + y − x·y` (dual of product).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbabilisticSum;

impl Conorm for ProbabilisticSum {
    #[inline]
    fn s(&self, a: Score, b: Score) -> Score {
        let (x, y) = (a.value(), b.value());
        Score::clamped(x + y - x * y)
    }

    fn conorm_name(&self) -> String {
        "prob-sum".to_owned()
    }
}

/// The bounded sum: `s(x, y) = min(1, x + y)` (dual of Łukasiewicz).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundedSum;

impl Conorm for BoundedSum {
    #[inline]
    fn s(&self, a: Score, b: Score) -> Score {
        Score::clamped(a.value() + b.value())
    }

    fn conorm_name(&self) -> String {
        "bounded-sum".to_owned()
    }
}

/// The drastic sum: `s(x, y) = max(x, y)` if `min(x, y) = 0`, else 1
/// (dual of the drastic t-norm; pointwise the largest co-norm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrasticSum;

impl Conorm for DrasticSum {
    #[inline]
    fn s(&self, a: Score, b: Score) -> Score {
        if a == Score::ZERO {
            b
        } else if b == Score::ZERO {
            a
        } else {
            Score::ONE
        }
    }

    fn conorm_name(&self) -> String {
        "drastic-sum".to_owned()
    }
}

/// The Einstein sum: `s(x, y) = (x + y) / (1 + x·y)` (dual of the
/// Einstein product).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EinsteinSum;

impl Conorm for EinsteinSum {
    #[inline]
    fn s(&self, a: Score, b: Score) -> Score {
        let (x, y) = (a.value(), b.value());
        Score::clamped((x + y) / (1.0 + x * y))
    }

    fn conorm_name(&self) -> String {
        "einstein-sum".to_owned()
    }
}

/// The Yager co-norm family:
/// `s(x, y) = min(1, (x^p + y^p)^(1/p))` for `p > 0`
/// (dual of the Yager t-norm family).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YagerSum {
    p: f64,
}

impl YagerSum {
    /// Creates a Yager co-norm. Returns `None` unless `p > 0` and finite.
    pub fn new(p: f64) -> Option<YagerSum> {
        (p > 0.0 && p.is_finite()).then_some(YagerSum { p })
    }

    /// The family exponent p.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Conorm for YagerSum {
    #[inline]
    fn s(&self, a: Score, b: Score) -> Score {
        let u = a.value().powf(self.p);
        let v = b.value().powf(self.p);
        Score::clamped((u + v).powf(1.0 / self.p))
    }

    fn conorm_name(&self) -> String {
        format!("yager-sum({})", self.p)
    }
}

/// Every shipped co-norm, boxed, for property sweeps and the axiom table.
pub fn all_conorms() -> Vec<Box<dyn Conorm>> {
    vec![
        Box::new(Max),
        Box::new(ProbabilisticSum),
        Box::new(BoundedSum),
        Box::new(DrasticSum),
        Box::new(EinsteinSum),
        // lint:allow(no-panic): constant parameter; YagerSum::new accepts any p >= 1
        Box::new(YagerSum::new(2.0).expect("2 is a valid p")),
    ]
}

impl Conorm for Box<dyn Conorm> {
    fn s(&self, a: Score, b: Score) -> Score {
        (**self).s(a, b)
    }
    fn conorm_name(&self) -> String {
        (**self).conorm_name()
    }
}

impl<S: Conorm + ?Sized> Conorm for &S {
    fn s(&self, a: Score, b: Score) -> Score {
        (**self).s(a, b)
    }
    fn conorm_name(&self) -> String {
        (**self).conorm_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::tnorms::{Drastic, Einstein, Lukasiewicz, Min, Product, Yager};
    use crate::scoring::{Dual, TNorm};

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn grid() -> Vec<Score> {
        [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
            .iter()
            .map(|&v| s(v))
            .collect()
    }

    fn check_conorm_axioms(conorm: &dyn Conorm) {
        let g = grid();
        // ∨-conservation.
        assert_eq!(conorm.s(Score::ONE, Score::ONE), Score::ONE);
        for &x in &g {
            assert!(
                conorm.s(x, Score::ZERO).approx_eq(x, 1e-12),
                "{}: s(x,0) != x",
                conorm.conorm_name()
            );
            assert!(
                conorm.s(Score::ZERO, x).approx_eq(x, 1e-12),
                "{}: s(0,x) != x",
                conorm.conorm_name()
            );
        }
        for &a in &g {
            for &b in &g {
                let ab = conorm.s(a, b);
                assert!(
                    ab.approx_eq(conorm.s(b, a), 1e-12),
                    "{}: commutativity",
                    conorm.conorm_name()
                );
                for &c in &g {
                    let left = conorm.s(conorm.s(a, b), c);
                    let right = conorm.s(a, conorm.s(b, c));
                    assert!(
                        left.approx_eq(right, 1e-9),
                        "{}: associativity at ({a},{b},{c})",
                        conorm.conorm_name()
                    );
                }
                for &a2 in &g {
                    if a2 >= a {
                        assert!(
                            conorm.s(a2, b) >= ab || conorm.s(a2, b).approx_eq(ab, 1e-12),
                            "{}: monotonicity",
                            conorm.conorm_name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_shipped_conorms_satisfy_the_axioms() {
        for c in all_conorms() {
            check_conorm_axioms(c.as_ref());
        }
    }

    #[test]
    fn shipped_conorms_match_their_duals() {
        let pairs: Vec<(Box<dyn Conorm>, Box<dyn TNorm>)> = vec![
            (Box::new(Max), Box::new(Min)),
            (Box::new(ProbabilisticSum), Box::new(Product)),
            (Box::new(BoundedSum), Box::new(Lukasiewicz)),
            (Box::new(DrasticSum), Box::new(Drastic)),
            (Box::new(EinsteinSum), Box::new(Einstein)),
            (
                Box::new(YagerSum::new(3.0).unwrap()),
                Box::new(Yager::new(3.0).unwrap()),
            ),
        ];
        for (conorm, norm) in pairs {
            let dual = Dual(&*norm);
            for &a in &grid() {
                for &b in &grid() {
                    assert!(
                        conorm.s(a, b).approx_eq(dual.s(a, b), 1e-9),
                        "{} is not the dual of {} at ({a},{b})",
                        conorm.conorm_name(),
                        norm.norm_name()
                    );
                }
            }
        }
    }

    #[test]
    fn max_is_the_smallest_drastic_sum_the_largest() {
        for c in all_conorms() {
            for &a in &grid() {
                for &b in &grid() {
                    let v = c.s(a, b);
                    assert!(v >= Max.s(a, b) || v.approx_eq(Max.s(a, b), 1e-12));
                    assert!(v <= DrasticSum.s(a, b) || v.approx_eq(DrasticSum.s(a, b), 1e-12));
                }
            }
        }
    }

    #[test]
    fn invalid_yager_sum_rejected() {
        assert!(YagerSum::new(-1.0).is_none());
        assert!(YagerSum::new(f64::NAN).is_none());
        assert_eq!(YagerSum::new(2.0).unwrap().p(), 2.0);
    }
}
