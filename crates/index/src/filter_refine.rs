//! Filter-and-refine k-NN over histograms using the \[HSE+95\]
//! distance-bounding filter (§2.1).
//!
//! "We see from (2) that we can restrict our attention to objects whose
//! short color vector ŷ is close to the short color vector x̂.
//! Intuitively, x̂ is being used as a 'filter' to eliminate from
//! consideration objects … where d̂(ŷ, x̂) is too large."
//!
//! Search: compute the cheap lower bound `d̂` to every object (O(k) per
//! object), then refine candidates in ascending `d̂` order with the
//! exact distance, stopping as soon as the next lower bound exceeds
//! the current k-th best exact distance. The lower-bound property
//! guarantees **zero false dismissals**; the fraction of full-distance
//! computations avoided is experiment E7's headline number.
//!
//! The refine stage runs through the Cholesky-embedded kernel
//! (`fmdb_media::embed`): histograms are pre-embedded at build time so
//! each exact distance costs O(k) instead of O(k²), and the running
//! sum **early-abandons** against the current k-th best
//! ([`FilterStats::refine_abandoned`] counts the cutoffs).

use std::fmt;

use fmdb_media::bounding::{BoundError, BoundedDistance, ShortVector};
use fmdb_media::color::{ColorHistogram, ColorSpace};
use fmdb_media::distance::DistanceError;
use fmdb_media::embed::{EmbedError, EmbeddedCorpus, EmbeddedSpace};

use crate::geometry::GeometryError;
use crate::rtree::RTree;

/// Error raised by the filter-refine index.
#[derive(Debug, Clone)]
pub enum FilterError {
    /// Distance bounding failed.
    Bound(BoundError),
    /// Exact distance failed.
    Distance(DistanceError),
    /// Short-vector index failure.
    Index(GeometryError),
    /// The embedded distance kernel failed.
    Embed(EmbedError),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::Bound(e) => write!(f, "{e}"),
            FilterError::Distance(e) => write!(f, "{e}"),
            FilterError::Index(e) => write!(f, "{e}"),
            FilterError::Embed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FilterError {}

impl From<BoundError> for FilterError {
    fn from(e: BoundError) -> Self {
        FilterError::Bound(e)
    }
}

impl From<DistanceError> for FilterError {
    fn from(e: DistanceError) -> Self {
        FilterError::Distance(e)
    }
}

impl From<GeometryError> for FilterError {
    fn from(e: GeometryError) -> Self {
        FilterError::Index(e)
    }
}

impl From<EmbedError> for FilterError {
    fn from(e: EmbedError) -> Self {
        FilterError::Embed(e)
    }
}

/// Per-query cost of a filter-refine search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Cheap lower-bound evaluations — equal to the number of objects
    /// for the linear filter; far fewer with the short-vector index.
    pub filter_evaluations: u64,
    /// Exact (embedded O(k)) distance evaluations run to completion.
    pub full_evaluations: u64,
    /// Short-vector index nodes visited (0 for the linear filter).
    pub index_nodes: u64,
    /// Refine-stage evaluations cut short by early abandoning: the
    /// running squared sum exceeded the current k-th best before the
    /// last dimension.
    pub refine_abandoned: u64,
}

impl FilterStats {
    /// Fraction of full distances avoided relative to a plain scan.
    pub fn savings(&self) -> f64 {
        if self.filter_evaluations == 0 {
            0.0
        } else {
            1.0 - self.full_evaluations as f64 / self.filter_evaluations as f64
        }
    }
}

/// A filter-refine index over a fixed set of histograms.
///
/// Histograms are pre-embedded through the Cholesky kernel at build
/// time, so the refine stage pays O(k) per exact distance (with early
/// abandoning) instead of the O(k²) quadratic form.
#[derive(Debug, Clone)]
pub struct FilterRefineIndex {
    bounded: BoundedDistance,
    /// Pre-embedded histogram coordinates: the refine-stage kernel.
    corpus: EmbeddedCorpus,
    shorts: Vec<ShortVector>,
    /// 3-dim R-tree over the short vectors — "we could potentially have
    /// a multidimensional index on short color vectors" (§2.1).
    short_index: RTree,
}

impl FilterRefineIndex {
    /// Builds the index: derives the filter for `space`, projects
    /// every histogram to its short vector, and embeds every histogram
    /// through the Cholesky kernel (O(k²) each, once).
    pub fn build(
        space: &ColorSpace,
        histograms: Vec<ColorHistogram>,
    ) -> Result<FilterRefineIndex, FilterError> {
        let bounded = BoundedDistance::for_space(space)?;
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(space)?, &histograms)?;
        let shorts = histograms
            .iter()
            .map(|h| bounded.filter.project(h))
            .collect::<Result<Vec<_>, _>>()?;
        let mut short_index = RTree::new(3)?;
        for (i, s) in shorts.iter().enumerate() {
            short_index.insert(&s.coords, i as u64)?;
        }
        Ok(FilterRefineIndex {
            bounded,
            corpus,
            shorts,
            short_index,
        })
    }

    /// Exact k-NN through the short-vector **R-tree**: candidates are
    /// streamed by ascending lower bound from the 3-dim index instead
    /// of sorting all N lower bounds — the fully indexed version of
    /// [`FilterRefineIndex::knn`].
    pub fn knn_indexed(
        &self,
        query: &ColorHistogram,
        k: usize,
    ) -> Result<(Vec<(usize, f64)>, FilterStats), FilterError> {
        let mut stats = FilterStats::default();
        if k == 0 || self.corpus.is_empty() {
            return Ok((Vec::new(), stats));
        }
        let q_short = self.bounded.filter.project(query)?;
        let q_embed = self.corpus.space().embed(query)?;
        let mut stream = self.short_index.nearest_iter(&q_short.coords)?;

        // Squared distances internally; sqrt once at the end.
        let mut result: Vec<(usize, f64)> = Vec::new();
        let mut kth_sq = f64::INFINITY;
        for neighbor in stream.by_ref() {
            // neighbor.distance IS d̂ (the scale is baked into the
            // stored coordinates).
            if result.len() == k && neighbor.distance * neighbor.distance > kth_sq {
                break;
            }
            let i = neighbor.id as usize;
            let threshold_sq = if result.len() == k {
                kth_sq
            } else {
                f64::INFINITY
            };
            let Some(d_sq) = self
                .corpus
                .squared_distance_abandoning(&q_embed, i, threshold_sq)
            else {
                stats.refine_abandoned += 1;
                continue;
            };
            stats.full_evaluations += 1;
            if result.len() < k || d_sq < kth_sq {
                result.push((i, d_sq));
                sort_by_distance(&mut result);
                result.truncate(k);
                if result.len() == k {
                    kth_sq = result[k - 1].1;
                }
            }
        }
        let access = stream.access();
        stats.index_nodes = access.nodes_visited;
        stats.filter_evaluations = access.distance_computations;
        Ok((take_roots(result), stats))
    }

    /// Number of indexed histograms.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }

    /// The `k` nearest histograms to `query` under the exact
    /// quadratic-form distance, answered with filter-and-refine.
    ///
    /// Returns `(index, exact_distance)` pairs in ascending distance,
    /// plus the cost statistics.
    pub fn knn(
        &self,
        query: &ColorHistogram,
        k: usize,
    ) -> Result<(Vec<(usize, f64)>, FilterStats), FilterError> {
        let mut stats = FilterStats::default();
        if k == 0 || self.corpus.is_empty() {
            return Ok((Vec::new(), stats));
        }
        let q_short = self.bounded.filter.project(query)?;
        let q_embed = self.corpus.space().embed(query)?;
        // Filter phase: lower bounds to every object.
        let mut order: Vec<(f64, usize)> = self
            .shorts
            .iter()
            .enumerate()
            .map(|(i, s)| (q_short.distance(s), i))
            .collect();
        stats.filter_evaluations = order.len() as u64;
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Refine phase in ascending lower-bound order, on squared
        // embedded distances with early abandoning.
        let mut result: Vec<(usize, f64)> = Vec::new();
        let mut kth_sq = f64::INFINITY;
        for (lower, i) in order {
            if result.len() == k && lower * lower > kth_sq {
                break; // d ≥ d̂ > kth for everything that follows.
            }
            let threshold_sq = if result.len() == k {
                kth_sq
            } else {
                f64::INFINITY
            };
            let Some(d_sq) = self
                .corpus
                .squared_distance_abandoning(&q_embed, i, threshold_sq)
            else {
                stats.refine_abandoned += 1;
                continue;
            };
            stats.full_evaluations += 1;
            if result.len() < k || d_sq < kth_sq {
                result.push((i, d_sq));
                sort_by_distance(&mut result);
                result.truncate(k);
                if result.len() == k {
                    kth_sq = result[k - 1].1;
                }
            }
        }
        Ok((take_roots(result), stats))
    }
}

/// Ascending `(distance, index)` order (distances here are squared,
/// which sorts identically).
fn sort_by_distance(v: &mut [(usize, f64)]) {
    v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
}

/// Converts internal squared distances to the public distance shape.
fn take_roots(v: Vec<(usize, f64)>) -> Vec<(usize, f64)> {
    v.into_iter().map(|(i, d_sq)| (i, d_sq.sqrt())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmdb_media::color::Rgb;
    use fmdb_media::distance::HistogramDistance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_histograms(space: &ColorSpace, n: usize, seed: u64) -> Vec<ColorHistogram> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Concentrated around a dominant color, like real images.
                let dominant = Rgb::new(rng.gen(), rng.gen(), rng.gen());
                let colors: Vec<Rgb> = (0..60)
                    .map(|_| {
                        Rgb::new(
                            dominant.r + rng.gen_range(-0.15..0.15),
                            dominant.g + rng.gen_range(-0.15..0.15),
                            dominant.b + rng.gen_range(-0.15..0.15),
                        )
                    })
                    .collect();
                ColorHistogram::from_colors(space, &colors).expect("non-empty colors")
            })
            .collect()
    }

    #[test]
    fn zero_false_dismissals_vs_brute_force() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 150, 5);
        let index = FilterRefineIndex::build(&space, hists.clone()).unwrap();
        let queries = random_histograms(&space, 10, 77);
        for q in &queries {
            let (got, _) = index.knn(q, 5).unwrap();
            // Brute-force reference.
            let mut expect: Vec<(usize, f64)> = hists
                .iter()
                .enumerate()
                .map(|(i, h)| (i, index.bounded.full.distance(q, h).unwrap()))
                .collect();
            expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            expect.truncate(5);
            let got_d: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
            let exp_d: Vec<f64> = expect.iter().map(|&(_, d)| d).collect();
            for (g, e) in got_d.iter().zip(&exp_d) {
                assert!((g - e).abs() < 1e-9, "distance mismatch {g} vs {e}");
            }
        }
    }

    #[test]
    fn filter_avoids_some_full_distances() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 300, 9);
        let index = FilterRefineIndex::build(&space, hists).unwrap();
        let q = random_histograms(&space, 1, 123).pop().unwrap();
        let (_, stats) = index.knn(&q, 5).unwrap();
        assert_eq!(stats.filter_evaluations, 300);
        assert!(stats.full_evaluations < 300, "no savings at all: {stats:?}");
        assert!(stats.savings() > 0.0);
    }

    #[test]
    fn refine_stage_abandons_hopeless_candidates() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 300, 21);
        let index = FilterRefineIndex::build(&space, hists).unwrap();
        let q = random_histograms(&space, 1, 55).pop().unwrap();
        let (_, stats) = index.knn(&q, 3).unwrap();
        assert!(
            stats.refine_abandoned > 0,
            "early abandoning never fired: {stats:?}"
        );
        // Abandoned candidates are ones the filter admitted but the
        // kernel cut short; they must not be double-counted as full
        // evaluations.
        assert!(stats.full_evaluations + stats.refine_abandoned <= stats.filter_evaluations);
    }

    #[test]
    fn indexed_knn_matches_linear_knn() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 250, 12);
        let index = FilterRefineIndex::build(&space, hists).unwrap();
        let queries = random_histograms(&space, 8, 99);
        for q in &queries {
            let (linear, _) = index.knn(q, 6).unwrap();
            let (indexed, stats) = index.knn_indexed(q, 6).unwrap();
            let ld: Vec<f64> = linear.iter().map(|&(_, d)| d).collect();
            let id: Vec<f64> = indexed.iter().map(|&(_, d)| d).collect();
            for (a, b) in ld.iter().zip(&id) {
                assert!((a - b).abs() < 1e-9, "{ld:?} vs {id:?}");
            }
            // The index must examine far fewer short vectors than N.
            assert!(
                stats.filter_evaluations < 250,
                "index did not prune: {stats:?}"
            );
            assert!(stats.index_nodes > 0);
        }
    }

    #[test]
    fn edge_cases() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 10, 3);
        let index = FilterRefineIndex::build(&space, hists).unwrap();
        let q = random_histograms(&space, 1, 4).pop().unwrap();
        assert!(index.knn(&q, 0).unwrap().0.is_empty());
        assert_eq!(index.knn(&q, 100).unwrap().0.len(), 10);
        assert!(index.knn_indexed(&q, 0).unwrap().0.is_empty());
        assert_eq!(index.knn_indexed(&q, 100).unwrap().0.len(), 10);
        assert_eq!(index.len(), 10);
    }
}
