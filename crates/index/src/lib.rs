//! # fmdb-index — multidimensional access methods
//!
//! The "speeding up the evaluation" layer (§2.1) of the reproduction
//! of Fagin, *"Fuzzy Queries in Multimedia Database Systems"*
//! (PODS 1998):
//!
//! * [`rtree`] — an R-tree with R*-style splits \[BKSS90\] and
//!   best-first k-NN, instrumented with node/distance access counts;
//! * [`gridfile`] — a grid file \[NHS84\] whose directory growth makes
//!   the dimensionality curse measurable;
//! * [`scan`] — the sequential-scan baseline;
//! * [`precomputed`] — the all-pairs distance matrix for small,
//!   update-rare databases;
//! * [`filter_refine`] — distance-bounding filter-and-refine k-NN over
//!   color histograms (\[HSE+95\], zero false dismissals);
//! * [`geometry`] — shared MBR/point machinery.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod filter_refine;
pub mod geometry;
pub mod gridfile;
pub mod precomputed;
pub mod quadtree;
pub mod rtree;
pub mod scan;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::filter_refine::{FilterRefineIndex, FilterStats};
    pub use crate::geometry::Mbr;
    pub use crate::gridfile::GridFile;
    pub use crate::precomputed::PrecomputedDistances;
    pub use crate::quadtree::QuadTree;
    pub use crate::rtree::{IndexAccess, ItemId, Neighbor, RTree};
    pub use crate::scan::LinearScan;
}
