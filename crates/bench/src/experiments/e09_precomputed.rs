//! E9 — precomputed pairwise distances (§2.1): for "a few thousand
//! images" with rare updates, storing all pairwise distances makes
//! query-by-example free of "painful computations such as formula (1)".

use std::time::Instant;

use fmdb_index::precomputed::PrecomputedDistances;
use fmdb_media::distance::HistogramDistance;
use fmdb_media::distance::QuadraticFormDistance;
use fmdb_media::embed::{EmbeddedCorpus, EmbeddedSpace};
use fmdb_media::synth::{SynthConfig, SyntheticDb};

use crate::report::{f3, Report, Table};
use crate::runners::RunCfg;

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E9",
        "precomputed distance matrix vs on-the-fly evaluation",
        "§2.1: precompute all pairwise distances for small, update-rare databases; \
         queries then need no real-time distance computation",
    );
    let sizes: Vec<usize> = if cfg.quick {
        vec![200, 400]
    } else {
        vec![500, 1000, 2000, 4000]
    };
    let k = 10usize;
    let queries = cfg.pick(30, 10);

    let mut t = Table::new(
        "query-by-example 10-NN over k = 64 bin histograms",
        &[
            "N",
            "build evals",
            "build s",
            "live µs/query",
            "precomp µs/query",
            "speedup",
            "matrix MB",
        ],
    );
    for &n in &sizes {
        let db = SyntheticDb::generate(&SynthConfig {
            count: n,
            bins_per_channel: 4,
            seed: 13,
            ..SynthConfig::default()
        });
        let qf = QuadraticFormDistance::new(db.space.similarity_matrix());
        let hists: Vec<_> = db.objects.iter().map(|o| o.histogram.clone()).collect();

        // Build through the embedded kernel: O(n²k) instead of O(n²k²),
        // storing the exact same distances.
        let start = Instant::now();
        let corpus = EmbeddedCorpus::build(
            EmbeddedSpace::for_space(&db.space).expect("QBIC matrix embeds"),
            &hists,
        )
        .expect("same space");
        let pre = PrecomputedDistances::build_embedded(&corpus).expect("n ≥ 2");
        let build_s = start.elapsed().as_secs_f64();

        // Live: compute distances at query time.
        let start = Instant::now();
        for q in 0..queries {
            let qi = (q * 37) % n;
            let mut all: Vec<(usize, f64)> = (0..n)
                .filter(|&j| j != qi)
                .map(|j| (j, qf.distance(&hists[qi], &hists[j]).expect("same space")))
                .collect();
            all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
            all.truncate(k);
        }
        let live = start.elapsed().as_secs_f64() / queries as f64;

        // Precomputed: table lookups only.
        let start = Instant::now();
        for q in 0..queries {
            let qi = (q * 37) % n;
            let _ = pre.knn(qi, k).expect("valid index");
        }
        let precomp = start.elapsed().as_secs_f64() / queries as f64;

        t.row(vec![
            n.to_string(),
            pre.build_evaluations().to_string(),
            f3(build_s),
            f3(live * 1e6),
            f3(precomp * 1e6),
            f3(live / precomp.max(1e-12)),
            f3(n as f64 * n as f64 / 2.0 * 4.0 / 1e6),
        ]);
    }
    report.table(t);
    report.note(
        "per-query latency drops by orders of magnitude once distances are precomputed; the \
         price is the quadratic build cost and O(N²) memory, which is exactly why the paper \
         scopes the trick to databases of a few thousand objects.",
    );
    report
}
