//! Standalone runner for experiment `e15_weighting_laws`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e15_weighting_laws::run(&cfg).print();
}
