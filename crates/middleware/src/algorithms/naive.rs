//! The naive ("obvious") algorithm of §4.1.
//!
//! "Have the subsystem dealing with color output explicitly the graded
//! set consisting of all pairs … for every object" — i.e. drain every
//! list completely under sorted access, compute every object's overall
//! grade, and keep the best `k`. Its database access cost is `m·N`
//! (the paper quotes `2N` for the two-conjunct example), which
//! Theorem 4.1 shows A₀ beats by a polynomial factor.

use std::collections::HashMap;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::{finalize, validate, AlgoError, TopKAlgorithm, TopKResult};
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// The full-scan baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl TopKAlgorithm for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        validate(sources, scoring, k)?;
        let m = sources.len();
        let mut stats = AccessStats::ZERO;
        let mut grades: HashMap<Oid, Vec<Score>> = HashMap::new();

        for (i, source) in sources.iter_mut().enumerate() {
            source.rewind();
            while let Some(so) = source.sorted_next() {
                stats.sorted += 1;
                grades
                    .entry(so.id)
                    // Objects a sparse source never streams keep grade 0
                    // in that slot.
                    .or_insert_with(|| vec![Score::ZERO; m])[i] = so.grade;
            }
        }

        let combined: Vec<ScoredObject<Oid>> = grades
            .into_iter()
            .map(|(oid, gs)| ScoredObject::new(oid, scoring.combine(&gs)))
            .collect();
        Ok(finalize(combined, k, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use fmdb_core::scoring::tnorms::Min;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    #[test]
    fn full_scan_finds_the_exact_top_k() {
        let mut a = VecSource::from_dense("color", &[s(0.9), s(0.2), s(0.6), s(0.4)]);
        let mut b = VecSource::from_dense("shape", &[s(0.1), s(0.8), s(0.7), s(0.5)]);
        let mut sources: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = Naive.top_k(&mut sources, &Min, 2).unwrap();
        // min grades: [0.1, 0.2, 0.6, 0.4] → top-2 = oid 2 (0.6), oid 3 (0.4)
        assert_eq!(r.answers.len(), 2);
        assert_eq!(r.answers[0].id, 2);
        assert_eq!(r.answers[0].grade, s(0.6));
        assert_eq!(r.answers[1].id, 3);
        assert_eq!(r.answers[1].grade, s(0.4));
    }

    #[test]
    fn cost_is_m_times_n() {
        let n = 50;
        let grades: Vec<Score> = (0..n).map(|i| s(i as f64 / n as f64)).collect();
        let mut a = VecSource::from_dense("a", &grades);
        let mut b = VecSource::from_dense("b", &grades);
        let mut c = VecSource::from_dense("c", &grades);
        let mut sources: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b, &mut c];
        let r = Naive.top_k(&mut sources, &Min, 5).unwrap();
        assert_eq!(r.stats.sorted, 3 * n as u64);
        assert_eq!(r.stats.random, 0);
    }

    #[test]
    fn rejects_zero_k_and_empty_sources() {
        let mut a = VecSource::from_dense("a", &[s(0.5)]);
        let mut sources: Vec<&mut dyn GradedSource> = vec![&mut a];
        assert_eq!(Naive.top_k(&mut sources, &Min, 0), Err(AlgoError::ZeroK));
        let mut none: Vec<&mut dyn GradedSource> = vec![];
        assert_eq!(Naive.top_k(&mut none, &Min, 1), Err(AlgoError::NoSources));
    }

    #[test]
    fn k_larger_than_universe_returns_everything() {
        let mut a = VecSource::from_dense("a", &[s(0.5), s(0.7)]);
        let mut sources: Vec<&mut dyn GradedSource> = vec![&mut a];
        let r = Naive.top_k(&mut sources, &Min, 10).unwrap();
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn sparse_sources_grade_missing_objects_zero() {
        let mut a = VecSource::new("a", vec![(0, s(0.9)), (1, s(0.8))]);
        let mut b = VecSource::new("b", vec![(0, s(0.7))]); // knows nothing of 1
        let mut sources: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = Naive.top_k(&mut sources, &Min, 2).unwrap();
        assert_eq!(r.answers[0], ScoredObject::new(0, s(0.7)));
        assert_eq!(r.answers[1], ScoredObject::new(1, Score::ZERO));
    }
}
