//! Standalone runner for experiment `e03_lower_bound`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e03_lower_bound::run(&cfg).print();
}
