//! `detached-thread`: every `thread::spawn` must keep its
//! `JoinHandle` (bind it, return it, push it somewhere) or be
//! explicitly justified.
//!
//! A detached thread outlives the scope that can observe its panics
//! and races teardown: the engine's shard workers are all joined, and
//! the one legitimately detached thread in the workspace — the store's
//! read-ahead worker — is detached *because* its channel disconnect is
//! the shutdown signal, which is exactly the kind of argument a
//! `lint:allow(detached-thread): …` comment must record.

use crate::analyze::AnalyzedFile;
use crate::diagnostics::Diagnostic;
use crate::workspace::FileClass;

/// Rule name, as reported and as used in `lint:allow(...)`.
pub const RULE: &str = "detached-thread";

/// Checks one parsed file.
pub fn check(af: &AnalyzedFile<'_>) -> Vec<Diagnostic> {
    if af.source.class != FileClass::Lib {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for f in &af.tree.fns {
        for spawn in &f.body.spawns {
            if !spawn.detached {
                continue;
            }
            // A spawn whose handle flows onward — bound by `let`,
            // pushed into a collection, returned — is managed by its
            // caller; only a discarded handle detaches the thread.
            if spawn.handle_kept {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    RULE,
                    &af.source.rel_path,
                    spawn.line,
                    spawn.col,
                    format!(
                        "`thread::spawn` in `{}` discards its `JoinHandle` — \
                         the thread is detached",
                        f.name
                    ),
                )
                .with_help(
                    "keep the handle and join it (or use a scoped thread); if \
                     detachment is intentional, say why the thread's lifetime is \
                     bounded: `// lint:allow(detached-thread): <why>`",
                ),
            );
        }
    }
    diags
}
