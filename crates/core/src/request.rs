//! Source-independent top-k request parameters.
//!
//! A top-k query is "give me the `k` best objects, optionally weighting
//! the subqueries' importance" (§5). Those two parameters are pure
//! semantics — no access model involved — so they live here in the
//! core crate as [`TopKSpec`]; the middleware's `TopKRequest` binds a
//! spec to concrete graded sources and a scoring function.

use std::fmt;

use crate::weights::{Weighting, WeightingError};

/// Error raised while validating a [`TopKSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// `k` was zero — "the best zero objects" is never what was meant.
    ZeroK,
    /// The weight vector was rejected (empty, negative, all-zero, …).
    Weights(WeightingError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ZeroK => write!(f, "k must be at least 1"),
            SpecError::Weights(e) => write!(f, "invalid weights: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<WeightingError> for SpecError {
    fn from(e: WeightingError) -> SpecError {
        SpecError::Weights(e)
    }
}

/// The validated, source-independent part of a top-k request: how many
/// answers, and (optionally) how to weight the subqueries.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSpec {
    k: usize,
    weights: Option<Weighting>,
}

impl TopKSpec {
    /// An unweighted spec asking for the best `k` objects.
    pub fn new(k: usize) -> Result<TopKSpec, SpecError> {
        if k == 0 {
            return Err(SpecError::ZeroK);
        }
        Ok(TopKSpec { k, weights: None })
    }

    /// A weighted spec: `weights[i]` is the relative importance of the
    /// `i`-th subquery (normalized via [`Weighting::from_ratios`]).
    pub fn weighted(k: usize, weights: &[f64]) -> Result<TopKSpec, SpecError> {
        let mut spec = TopKSpec::new(k)?;
        spec.weights = Some(Weighting::from_ratios(weights)?);
        Ok(spec)
    }

    /// How many answers are requested.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The normalized subquery weighting, if any.
    pub fn weights(&self) -> Option<&Weighting> {
        self.weights.as_ref()
    }

    /// True when the spec fits a query of `m` subqueries (an
    /// unweighted spec fits any arity; a weighted one only its own).
    pub fn fits_arity(&self, m: usize) -> bool {
        match &self.weights {
            None => true,
            Some(w) => w.arity() == m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_k_is_rejected() {
        assert_eq!(TopKSpec::new(0), Err(SpecError::ZeroK));
        assert!(TopKSpec::new(1).is_ok());
    }

    #[test]
    fn weighted_spec_normalizes_ratios() {
        let spec = TopKSpec::weighted(5, &[2.0, 1.0, 1.0]).unwrap();
        let w = spec.weights().unwrap();
        assert_eq!(w.arity(), 3);
        assert!((w.weights()[0] - 0.5).abs() < 1e-12);
        assert!(spec.fits_arity(3));
        assert!(!spec.fits_arity(2));
    }

    #[test]
    fn unweighted_spec_fits_any_arity() {
        let spec = TopKSpec::new(3).unwrap();
        assert!(spec.fits_arity(1));
        assert!(spec.fits_arity(17));
        assert!(spec.weights().is_none());
    }

    #[test]
    fn bad_weights_are_rejected() {
        assert!(matches!(
            TopKSpec::weighted(1, &[]),
            Err(SpecError::Weights(_))
        ));
        assert!(matches!(
            TopKSpec::weighted(1, &[-1.0, 2.0]),
            Err(SpecError::Weights(_))
        ));
    }
}
