//! Prebuilt demo databases mirroring the paper's running examples: the
//! CD store (§3–§4.1) and the Advertisement/AdPhoto complex objects
//! (§4.2).

use fmdb_media::synth::{SynthConfig, SyntheticDb};

use crate::catalog::Catalog;
use crate::executor::Garlic;
use crate::object::{ComplexObject, SubObjectIndex, Value};
use crate::repository::{QbicRepository, TableRepository};

/// Artists used by the CD-store demo.
pub const ARTISTS: [&str; 5] = ["Beatles", "Kinks", "Who", "Zombies", "Byrds"];

/// Builds the CD-store demo: `n` albums with a crisp `Artist` column
/// (rotating through [`ARTISTS`]) and QBIC-graded `Color`/`Shape`
/// attributes over synthetic album covers.
///
/// Returns the Garlic instance; album `i` has artist
/// `ARTISTS[i % ARTISTS.len()]`.
pub fn cd_store(n: usize, seed: u64) -> Garlic {
    let db = SyntheticDb::generate(&SynthConfig {
        count: n,
        bins_per_channel: 4,
        seed,
        ..SynthConfig::default()
    });
    let mut table = TableRepository::new("store", n as u64);
    for i in 0..n {
        table.set(i as u64, "Artist", Value::text(ARTISTS[i % ARTISTS.len()]));
        table.set(i as u64, "Year", Value::Int(1960 + (i % 10) as i64));
    }
    let mut catalog = Catalog::new();
    catalog
        .register(Box::new(table))
        // lint:allow(no-panic): freshly built catalog, attribute names are distinct string literals
        .expect("fresh catalog accepts the table");
    catalog
        .register(Box::new(QbicRepository::new("qbic", db)))
        // lint:allow(no-panic): freshly built catalog, attribute names are distinct string literals
        .expect("fresh catalog accepts qbic");
    Garlic::new(catalog)
}

/// Builds the advertisement demo (§4.2): a photo database plus
/// `n_ads` Advertisements, each holding 1–3 AdPhotos, with every third
/// photo shared between two consecutive ads.
///
/// Returns the Garlic instance over *photos* (attribute `Color`,
/// `Shape`), the complex objects, and the reverse index used to lift
/// photo results to advertisements.
pub fn ad_database(
    n_photos: usize,
    n_ads: usize,
    seed: u64,
) -> (Garlic, Vec<ComplexObject>, SubObjectIndex) {
    let db = SyntheticDb::generate(&SynthConfig {
        count: n_photos,
        bins_per_channel: 4,
        seed,
        ..SynthConfig::default()
    });
    let mut catalog = Catalog::new();
    catalog
        .register(Box::new(QbicRepository::new("photos", db)))
        // lint:allow(no-panic): freshly built catalog, attribute names are distinct string literals
        .expect("fresh catalog accepts qbic");
    let garlic = Garlic::new(catalog);

    let mut ads = Vec::with_capacity(n_ads);
    for a in 0..n_ads {
        // Ad ids live above the photo id space.
        let mut ad = ComplexObject::new((n_photos + a) as u64);
        let base = (a * 3) % n_photos.max(1);
        ad.attach("AdPhoto", base as u64);
        if n_photos > 1 {
            ad.attach("AdPhoto", ((base + 1) % n_photos) as u64);
        }
        // Share a photo with the next ad.
        if a % 3 == 0 && n_photos > 2 {
            ad.attach("AdPhoto", ((base + 3) % n_photos) as u64);
        }
        ads.push(ad);
    }
    let index = SubObjectIndex::build(&ads);
    (garlic, ads, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::AlgoChoice;
    use crate::planner::PlanKind;
    use fmdb_core::query::{Query, Target};

    #[test]
    fn cd_store_answers_the_running_example() {
        let g = cd_store(50, 1);
        let q = Query::and(vec![
            Query::atomic("Artist", Target::Text("Beatles".into())),
            Query::atomic("Color", Target::Similar("red".into())),
        ]);
        let r = g.top_k(&q, 5).unwrap();
        assert_eq!(r.plan, PlanKind::CrispFilter);
        for a in &r.answers {
            if a.grade.value() > 0.0 {
                assert_eq!(a.id % ARTISTS.len() as u64, 0);
            }
        }
    }

    #[test]
    fn cd_store_crisp_year_queries_work() {
        let g = cd_store(30, 2);
        let q = Query::atomic("Year", Target::Int(1965));
        let r = g.top_k_with(&q, 30, AlgoChoice::Naive).unwrap();
        let hits = r.answers.iter().filter(|a| a.grade.value() == 1.0).count();
        assert_eq!(hits, 3); // years rotate 1960..1969 over 30 albums
    }

    #[test]
    fn ad_database_lifts_photo_hits_to_ads() {
        let (g, ads, index) = ad_database(30, 8, 3);
        let q = Query::atomic("Color", Target::Similar("red".into()));
        let photos = g.top_k(&q, 10).unwrap();
        let parents = crate::executor::Garlic::lift_to_parents(&photos, &index, "AdPhoto", 5);
        assert!(!parents.is_empty());
        // Every lifted id is an ad id.
        for p in &parents {
            assert!(ads.iter().any(|a| a.id == p.id), "{} is not an ad", p.id);
        }
        // Descending grades.
        for w in parents.windows(2) {
            assert!(w[0].grade >= w[1].grade);
        }
    }

    #[test]
    fn some_photos_are_shared() {
        let (_, _, index) = ad_database(30, 9, 4);
        let shared = (0..30u64).any(|p| index.is_shared("AdPhoto", p));
        assert!(shared, "the demo should produce shared sub-objects");
    }
}
