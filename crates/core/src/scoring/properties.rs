//! Runtime verification of scoring-function axioms (§3, Theorem 3.1).
//!
//! Garlic faced exactly this problem (§4.2): users supply arbitrary
//! scoring functions, but algorithm A₀ is only guaranteed correct for
//! monotone ones, so "the system must somehow guarantee monotonicity".
//! This module provides samplers that *check* each axiom on a dense grid
//! of the unit cube. A grid check cannot prove an axiom, but it can
//! refute one, and it is the practical gate a middleware can apply to a
//! user-defined function before agreeing to run A₀ on it.
//!
//! The checkers also power experiment E14, the axiom table over every
//! shipped scoring function (reproducing the paper's taxonomy: which
//! functions are t-norms, which are merely strict + monotone, which are
//! neither).

use std::fmt;

use crate::score::Score;
use crate::scoring::{Conorm, ScoringFunction, TNorm};

/// Outcome of checking one axiom on a sample grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No counterexample found on the grid.
    HoldsOnGrid,
    /// A counterexample was found.
    Fails,
}

impl Verdict {
    /// True if no counterexample was found.
    pub fn holds(self) -> bool {
        self == Verdict::HoldsOnGrid
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::HoldsOnGrid => write!(f, "yes"),
            Verdict::Fails => write!(f, "NO"),
        }
    }
}

/// Numeric tolerance used by all equality comparisons in the checkers.
pub const EPS: f64 = 1e-9;

/// The default sample grid: `steps + 1` evenly spaced grades in `[0,1]`.
pub fn sample_grid(steps: usize) -> Vec<Score> {
    (0..=steps)
        .map(|i| Score::clamped(i as f64 / steps as f64))
        .collect()
}

/// A 2-ary view of a scoring function, so the binary-axiom checkers can
/// run on t-norms, co-norms, and raw scoring functions alike.
pub trait Binary {
    /// Applies the function to two grades.
    fn apply2(&self, a: Score, b: Score) -> Score;
}

/// Wrapper running a [`TNorm`] through the binary checkers.
pub struct AsBinaryNorm<'a, N: ?Sized>(pub &'a N);

// The wrapped function need not be `Debug`, so the derive is
// unavailable; an opaque rendering satisfies the workspace's
// `missing_debug_implementations` hygiene without constraining N.
impl<N: ?Sized> fmt::Debug for AsBinaryNorm<'_, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AsBinaryNorm(..)")
    }
}

impl<N: TNorm + ?Sized> Binary for AsBinaryNorm<'_, N> {
    fn apply2(&self, a: Score, b: Score) -> Score {
        self.0.t(a, b)
    }
}

/// Wrapper running a [`Conorm`] through the binary checkers.
pub struct AsBinaryConorm<'a, S: ?Sized>(pub &'a S);

// The wrapped function need not be `Debug`, so the derive is
// unavailable; an opaque rendering satisfies the workspace's
// `missing_debug_implementations` hygiene without constraining S.
impl<S: ?Sized> fmt::Debug for AsBinaryConorm<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AsBinaryConorm(..)")
    }
}

impl<S: Conorm + ?Sized> Binary for AsBinaryConorm<'_, S> {
    fn apply2(&self, a: Score, b: Score) -> Score {
        self.0.s(a, b)
    }
}

/// Wrapper running any [`ScoringFunction`] at arity 2.
pub struct AsBinaryScoring<'a, F: ?Sized>(pub &'a F);

// The wrapped function need not be `Debug`, so the derive is
// unavailable; an opaque rendering satisfies the workspace's
// `missing_debug_implementations` hygiene without constraining F.
impl<F: ?Sized> fmt::Debug for AsBinaryScoring<'_, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AsBinaryScoring(..)")
    }
}

impl<F: ScoringFunction + ?Sized> Binary for AsBinaryScoring<'_, F> {
    fn apply2(&self, a: Score, b: Score) -> Score {
        self.0.combine(&[a, b])
    }
}

/// Checks ∧-conservation: `f(0,0) = 0` and `f(x,1) = f(1,x) = x`.
pub fn check_and_conservation(f: &dyn Binary, grid: &[Score]) -> Verdict {
    if f.apply2(Score::ZERO, Score::ZERO) != Score::ZERO {
        return Verdict::Fails;
    }
    for &x in grid {
        if !f.apply2(x, Score::ONE).approx_eq(x, EPS) || !f.apply2(Score::ONE, x).approx_eq(x, EPS)
        {
            return Verdict::Fails;
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks ∨-conservation: `f(1,1) = 1` and `f(x,0) = f(0,x) = x`.
pub fn check_or_conservation(f: &dyn Binary, grid: &[Score]) -> Verdict {
    if f.apply2(Score::ONE, Score::ONE) != Score::ONE {
        return Verdict::Fails;
    }
    for &x in grid {
        if !f.apply2(x, Score::ZERO).approx_eq(x, EPS)
            || !f.apply2(Score::ZERO, x).approx_eq(x, EPS)
        {
            return Verdict::Fails;
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks monotonicity of a binary function in both arguments.
pub fn check_monotone2(f: &dyn Binary, grid: &[Score]) -> Verdict {
    for &a in grid {
        for &b in grid {
            let v = f.apply2(a, b);
            for &a2 in grid {
                if a2 >= a && f.apply2(a2, b).value() < v.value() - EPS {
                    return Verdict::Fails;
                }
            }
            for &b2 in grid {
                if b2 >= b && f.apply2(a, b2).value() < v.value() - EPS {
                    return Verdict::Fails;
                }
            }
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks commutativity `f(a,b) = f(b,a)`.
pub fn check_commutative(f: &dyn Binary, grid: &[Score]) -> Verdict {
    for &a in grid {
        for &b in grid {
            if !f.apply2(a, b).approx_eq(f.apply2(b, a), EPS) {
                return Verdict::Fails;
            }
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks associativity `f(f(a,b),c) = f(a,f(b,c))`.
pub fn check_associative(f: &dyn Binary, grid: &[Score]) -> Verdict {
    for &a in grid {
        for &b in grid {
            for &c in grid {
                let left = f.apply2(f.apply2(a, b), c);
                let right = f.apply2(a, f.apply2(b, c));
                if !left.approx_eq(right, 1e-7) {
                    return Verdict::Fails;
                }
            }
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks idempotence `f(x,x) = x` — the property behind preservation of
/// logical equivalence (`μ_{A∧A} = μ_A`), which by Theorem 3.1 only min
/// (among monotone conjunctions) and max (among monotone disjunctions)
/// satisfy.
pub fn check_idempotent(f: &dyn Binary, grid: &[Score]) -> Verdict {
    for &x in grid {
        if !f.apply2(x, x).approx_eq(x, EPS) {
            return Verdict::Fails;
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks the distributive logical equivalence
/// `μ_{A∧(B∨C)} = μ_{(A∧B)∨(A∧C)}` for a candidate conjunction `and` and
/// disjunction `or` — the second ingredient of Theorem 3.1's
/// "preserves logical equivalence" hypothesis.
pub fn check_distributive(and: &dyn Binary, or: &dyn Binary, grid: &[Score]) -> Verdict {
    for &a in grid {
        for &b in grid {
            for &c in grid {
                let left = and.apply2(a, or.apply2(b, c));
                let right = or.apply2(and.apply2(a, b), and.apply2(a, c));
                if !left.approx_eq(right, 1e-7) {
                    return Verdict::Fails;
                }
            }
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks strictness of an m-ary scoring function at the given arity:
/// `combine = 1` iff every argument is 1.
pub fn check_strict(f: &dyn ScoringFunction, grid: &[Score], arity: usize) -> Verdict {
    let ones = vec![Score::ONE; arity];
    if f.combine(&ones) != Score::ONE {
        return Verdict::Fails;
    }
    // Perturb each position downward; the result must drop below 1.
    for pos in 0..arity {
        for &x in grid {
            if x == Score::ONE {
                continue;
            }
            let mut args = ones.clone();
            args[pos] = x;
            if f.combine(&args) == Score::ONE {
                return Verdict::Fails;
            }
        }
    }
    Verdict::HoldsOnGrid
}

/// Checks monotonicity of an m-ary scoring function at the given arity
/// on random-ish structured samples from the grid (full cartesian
/// product is too large beyond arity 3; we sweep axis-aligned rays).
pub fn check_monotone_m(f: &dyn ScoringFunction, grid: &[Score], arity: usize) -> Verdict {
    // Base points: all-equal diagonals plus boundary corners.
    let mut bases: Vec<Vec<Score>> = grid.iter().map(|&g| vec![g; arity]).collect();
    bases.push(vec![Score::ZERO; arity]);
    bases.push(vec![Score::ONE; arity]);
    for base in &bases {
        let v = f.combine(base);
        for pos in 0..arity {
            for &x in grid {
                if x >= base[pos] {
                    let mut args = base.clone();
                    args[pos] = x;
                    if f.combine(&args).value() < v.value() - EPS {
                        return Verdict::Fails;
                    }
                }
            }
        }
    }
    Verdict::HoldsOnGrid
}

/// A full axiom report for one binary scoring function, as printed by
/// experiment E14.
#[derive(Debug, Clone)]
pub struct AxiomReport {
    /// Function name.
    pub name: String,
    /// ∧-conservation (t-norm boundary conditions).
    pub and_conservation: Verdict,
    /// ∨-conservation (co-norm boundary conditions).
    pub or_conservation: Verdict,
    /// Monotone in both arguments.
    pub monotone: Verdict,
    /// Commutative.
    pub commutative: Verdict,
    /// Associative.
    pub associative: Verdict,
    /// Idempotent (equivalence-preserving for repeated conjuncts).
    pub idempotent: Verdict,
    /// Strict at arity 2.
    pub strict: Verdict,
}

impl AxiomReport {
    /// True if the function satisfies all four t-norm axioms.
    pub fn is_tnorm(&self) -> bool {
        self.and_conservation.holds()
            && self.monotone.holds()
            && self.commutative.holds()
            && self.associative.holds()
    }

    /// True if the function satisfies all four co-norm axioms.
    pub fn is_conorm(&self) -> bool {
        self.or_conservation.holds()
            && self.monotone.holds()
            && self.commutative.holds()
            && self.associative.holds()
    }
}

/// Runs every binary axiom check against a scoring function at arity 2.
pub fn audit(f: &dyn ScoringFunction, grid: &[Score]) -> AxiomReport {
    let b = AsBinaryScoring(f);
    AxiomReport {
        name: f.name(),
        and_conservation: check_and_conservation(&b, grid),
        or_conservation: check_or_conservation(&b, grid),
        monotone: check_monotone2(&b, grid),
        commutative: check_commutative(&b, grid),
        associative: check_associative(&b, grid),
        idempotent: check_idempotent(&b, grid),
        strict: check_strict(f, grid, 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::conorms::Max;
    use crate::scoring::means::ArithmeticMean;
    use crate::scoring::tnorms::{all_tnorms, Min, Product};
    use crate::scoring::ConormScoring;

    #[test]
    fn min_passes_every_conjunction_axiom() {
        let grid = sample_grid(10);
        let r = audit(&Min, &grid);
        assert!(r.is_tnorm());
        assert!(r.idempotent.holds());
        assert!(r.strict.holds());
        assert!(!r.or_conservation.holds());
    }

    #[test]
    fn product_is_a_tnorm_but_not_idempotent() {
        let grid = sample_grid(10);
        let r = audit(&Product, &grid);
        assert!(r.is_tnorm());
        assert!(!r.idempotent.holds());
    }

    #[test]
    fn arithmetic_mean_is_not_a_tnorm() {
        let grid = sample_grid(10);
        let r = audit(&ArithmeticMean, &grid);
        assert!(!r.is_tnorm()); // fails ∧-conservation (mean(0,1)=½)
        assert!(!r.and_conservation.holds());
        assert!(r.monotone.holds());
        assert!(r.strict.holds());
        assert!(!r.associative.holds());
    }

    #[test]
    fn max_is_a_conorm_and_idempotent() {
        let grid = sample_grid(10);
        let r = audit(&ConormScoring(Max), &grid);
        assert!(r.is_conorm());
        assert!(r.idempotent.holds());
        assert!(!r.strict.holds()); // max(1, 0) = 1
    }

    #[test]
    fn theorem_3_1_uniqueness_of_min_on_the_grid() {
        // Among shipped t-norms, only min is idempotent — the grid-level
        // shadow of Theorem 3.1's uniqueness statement.
        let grid = sample_grid(10);
        for norm in all_tnorms() {
            let b = AsBinaryNorm(&*norm);
            let idem = check_idempotent(&b, &grid).holds();
            assert_eq!(
                idem,
                norm.norm_name() == "min",
                "{} idempotence unexpected",
                norm.norm_name()
            );
        }
    }

    #[test]
    fn min_max_distribute() {
        let grid = sample_grid(8);
        let and = AsBinaryNorm(&Min);
        let or = AsBinaryConorm(&Max);
        assert!(check_distributive(&and, &or, &grid).holds());
    }

    #[test]
    fn product_max_do_not_distribute() {
        let grid = sample_grid(8);
        let and = AsBinaryNorm(&Product);
        let or = AsBinaryConorm(&Max);
        // product over max does distribute! t(a, max(b,c)) = max(ab, ac).
        assert!(check_distributive(&and, &or, &grid).holds());
        // ...but product is still not equivalence-preserving because it
        // fails idempotence, so Theorem 3.1 is not contradicted.
        assert!(!check_idempotent(&and, &grid).holds());
    }

    #[test]
    fn monotone_m_ary_holds_for_tnorms() {
        let grid = sample_grid(6);
        for norm in all_tnorms() {
            assert!(
                check_monotone_m(&norm, &grid, 3).holds(),
                "{}",
                norm.norm_name()
            );
        }
    }

    #[test]
    fn strictness_fails_for_max() {
        let grid = sample_grid(6);
        assert!(!check_strict(&ConormScoring(Max), &grid, 3).holds());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::HoldsOnGrid.to_string(), "yes");
        assert_eq!(Verdict::Fails.to_string(), "NO");
    }
}
