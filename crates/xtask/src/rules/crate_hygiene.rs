//! Rule `crate-hygiene` (L4): every first-party crate root must carry
//! the workspace's baseline inner attributes:
//!
//! * `#![forbid(unsafe_code)]` — the paper's algorithms never need
//!   `unsafe`, so the whole workspace forbids it outright;
//! * `#![deny(missing_debug_implementations)]` — every public type is
//!   inspectable in logs and test failures;
//! * `#![warn(missing_docs)]` — public API carries documentation.
//!
//! Stricter levels satisfy the requirement (`deny(missing_docs)`
//! counts for `warn(missing_docs)`, `forbid` counts for `deny`), but
//! `unsafe_code` must be `forbid` specifically: `deny` can be
//! overridden by an inner `allow`, `forbid` cannot.
//!
//! Scope: `src/lib.rs` / `src/main.rs` of workspace packages.
//! `vendor/` is excluded by the walker — vendored stubs are not held
//! to first-party hygiene.

use crate::diagnostics::Diagnostic;
use crate::workspace::SourceFile;

const RULE: &str = "crate-hygiene";

/// `(lint name, minimum level index)` — index into [`LEVELS`].
const REQUIRED: &[(&str, usize)] = &[
    ("unsafe_code", 2),
    ("missing_debug_implementations", 1),
    ("missing_docs", 0),
];

/// Lint levels from weakest to strongest.
const LEVELS: &[&str] = &["warn", "deny", "forbid"];

/// Checks one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.is_crate_root {
        return Vec::new();
    }
    let found = inner_lint_attrs(file);
    let mut diags = Vec::new();
    for &(lint, min_level) in REQUIRED {
        let satisfied = found
            .iter()
            .any(|(level, name)| name == lint && *level >= min_level);
        if !satisfied {
            let want = if lint == "unsafe_code" {
                "forbid".to_owned()
            } else {
                LEVELS[min_level..].join("` or `#![")
            };
            diags.push(
                Diagnostic::new(
                    RULE,
                    &file.rel_path,
                    1,
                    1,
                    format!("crate root lacks `#![{}({lint})]`", LEVELS[min_level]),
                )
                .with_help(format!(
                    "add `#![{want}({lint})]` to the crate root's inner attributes"
                )),
            );
        }
    }
    diags
}

/// Collects `(level index, lint name)` pairs from the crate root's
/// inner attributes `#![level(lint, lint, …)]`.
fn inner_lint_attrs(file: &SourceFile) -> Vec<(usize, String)> {
    let code = &file.code;
    let mut found = Vec::new();
    let mut i = 0;
    while i + 3 < code.len() {
        // `# ! [ level ( … ) ]`
        if code[i].text == "#" && code[i + 1].text == "!" && code[i + 2].text == "[" {
            if let Some(level) = LEVELS.iter().position(|l| *l == code[i + 3].text) {
                if code.get(i + 4).map(|t| t.text == "(").unwrap_or(false) {
                    let mut j = i + 5;
                    while let Some(t) = code.get(j) {
                        match t.text.as_str() {
                            ")" => break,
                            "," => {}
                            name => found.push((level, name.to_owned())),
                        }
                        j += 1;
                    }
                    i = j;
                }
            }
        }
        i += 1;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::analyze;
    use std::path::PathBuf;

    fn check_src(path: &str, src: &str) -> Vec<Diagnostic> {
        check(&analyze(PathBuf::from(path), src))
    }

    const FULL: &str = "#![forbid(unsafe_code)]\n#![deny(missing_debug_implementations)]\n#![warn(missing_docs)]\npub fn f() {}\n";

    #[test]
    fn accepts_a_compliant_crate_root() {
        assert!(check_src("crates/core/src/lib.rs", FULL).is_empty());
        assert!(check_src("src/lib.rs", FULL).is_empty());
        assert!(check_src("crates/xtask/src/main.rs", FULL).is_empty());
    }

    #[test]
    fn flags_each_missing_attribute() {
        let diags = check_src("crates/core/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(diags.len(), 3);
        assert!(diags[0].message.contains("unsafe_code"));
        assert!(diags[1].message.contains("missing_debug_implementations"));
        assert!(diags[2].message.contains("missing_docs"));
    }

    #[test]
    fn deny_unsafe_code_is_not_enough() {
        let src = "#![deny(unsafe_code)]\n#![deny(missing_debug_implementations)]\n#![warn(missing_docs)]\n";
        let diags = check_src("crates/core/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unsafe_code"));
    }

    #[test]
    fn stricter_levels_satisfy_weaker_requirements() {
        let src = "#![forbid(unsafe_code)]\n#![forbid(missing_debug_implementations)]\n#![deny(missing_docs)]\n";
        assert!(check_src("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn grouped_lint_lists_are_understood() {
        let src =
            "#![forbid(unsafe_code)]\n#![deny(missing_debug_implementations, missing_docs)]\n";
        assert!(check_src("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn non_roots_are_ignored() {
        assert!(check_src("crates/core/src/score.rs", "pub fn f() {}\n").is_empty());
    }
}
