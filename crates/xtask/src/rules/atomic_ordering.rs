//! `atomic-ordering`: every explicit `Ordering::*` must either match a
//! whitelisted idiom or carry an `// ordering(<Ordering>): why`
//! justification.
//!
//! Whitelisted idioms (no comment required):
//!
//! 1. **Relaxed counter bump** — `fetch_add`/`fetch_sub` with a
//!    *literal* integer argument under `Ordering::Relaxed`. Pure
//!    telemetry: the value never feeds a decision, only a report.
//! 2. **Relaxed counter read/reset** — `load(Relaxed)`, or
//!    `store(<literal>, Relaxed)`, on an atomic that idiom 1 bumps in
//!    the same file. Reading a monotone counter for display tolerates
//!    staleness by construction.
//!
//! Everything else is decision-carrying or protocol-relevant and must
//! say *why* its ordering is sufficient: unjustified `Relaxed` on a
//! value that gates behaviour (the fetch-max threshold), a lazy
//! `SeqCst` that hides the real protocol, or a non-literal `fetch_add`
//! folding one atomic into another.

use crate::analyze::AnalyzedFile;
use crate::diagnostics::Diagnostic;
use crate::parser::AtomicSite;
use crate::workspace::FileClass;
use std::collections::HashSet;

/// Rule name, as reported and as used in `lint:allow(...)`.
pub const RULE: &str = "atomic-ordering";

/// True if `site`'s use of `ordering` matches a whitelisted idiom.
fn whitelisted(site: &AtomicSite, ordering: &str, counters: &HashSet<&str>) -> bool {
    if ordering != "Relaxed" {
        return false;
    }
    match site.method.as_str() {
        // Idiom 1: literal counter bump.
        "fetch_add" | "fetch_sub" => site.literal_arg,
        // Idiom 2: read of an idiom-1 counter.
        "load" => counters.contains(site.receiver.as_str()),
        // Idiom 2: literal reset of an idiom-1 counter.
        "store" => site.literal_arg && counters.contains(site.receiver.as_str()),
        _ => false,
    }
}

fn message(site: &AtomicSite, ordering: &str) -> (String, String) {
    let what = format!("`{}.{}`", site.receiver, site.method);
    let msg = match ordering {
        "SeqCst" => format!(
            "`SeqCst` on {what} — sequentially consistent ordering is \
             almost never required and hides the actual synchronization protocol"
        ),
        "Relaxed" => format!(
            "unjustified `Relaxed` on {what} — this atomic is not a \
             whitelisted telemetry counter, so its value may carry a decision"
        ),
        other => format!("`{other}` on {what} without a written validity argument"),
    };
    let help = format!(
        "state why this ordering is sufficient: `// ordering({ordering}): <why>` \
         on or immediately above this line (or weaken/strengthen the ordering)"
    );
    (msg, help)
}

/// Checks one parsed file.
pub fn check(af: &AnalyzedFile<'_>) -> Vec<Diagnostic> {
    if af.source.class != FileClass::Lib {
        return Vec::new();
    }
    let sites: Vec<&AtomicSite> = af.tree.fns.iter().flat_map(|f| &f.body.atomics).collect();
    // Idiom-1 counters: receivers bumped by a literal Relaxed
    // fetch_add/fetch_sub anywhere in this file.
    let counters: HashSet<&str> = sites
        .iter()
        .filter(|s| {
            matches!(s.method.as_str(), "fetch_add" | "fetch_sub")
                && s.literal_arg
                && s.orderings.iter().all(|o| o == "Relaxed")
                && !s.orderings.is_empty()
        })
        .map(|s| s.receiver.as_str())
        .collect();
    let atomic_lines: Vec<usize> = sites.iter().flat_map(|s| [s.recv_line, s.line]).collect();
    let mut diags = Vec::new();
    for site in &sites {
        for ordering in &site.orderings {
            if whitelisted(site, ordering, &counters) {
                continue;
            }
            if af
                .source
                .ordering_justified(ordering, site.recv_line, &atomic_lines)
            {
                continue;
            }
            let (msg, help) = message(site, ordering);
            diags.push(
                Diagnostic::new(RULE, &af.source.rel_path, site.line, site.col, msg)
                    .with_help(help),
            );
        }
    }
    diags
}
