//! The batched, parallel top-k execution engine.
//!
//! The paper's algorithms are specified — and implemented in
//! [`crate::algorithms`] — as strictly sequential consumers of sorted
//! and random access. A real middleware system (Garlic over QBIC et
//! al., §4) would not call a remote subsystem one object at a time: it
//! would *batch* sorted access, *overlap* the `m` independent streams,
//! and *cache* random-access grades it has already paid for. The
//! [`Engine`] adds exactly those three mechanics **without changing a
//! single answer or a single charged access**:
//!
//! * **Batched sorted access** — each stream is drained through
//!   [`GradedSource::sorted_batch`] in configurable chunks instead of
//!   per-object calls.
//! * **Worker threads** — with [`EngineConfig::parallel`] set, one
//!   prefetch worker per source keeps a bounded channel of batches full
//!   while the algorithm consumes them; the merge itself stays the
//!   existing scalar algorithm, so correctness is inherited.
//! * **A bounded LRU grade cache** — random-access grades are memoized
//!   in a [`GradeCache`] shared by every request the engine serves.
//!   A hit skips the subsystem probe but is *still charged* as one
//!   random access: the paper's cost measure counts what the algorithm
//!   asked for, not how the middleware happened to serve it. The
//!   hit/miss split is folded into
//!   [`AccessStats::cache_hits`]/[`AccessStats::cache_misses`].
//!
//! Because batching preserves per-stream order, prefetching only moves
//! *when* items are fetched (never *which* or *in what order* the
//! algorithm consumes them), and cache hits return the same grade the
//! probe would (grades are immutable snapshots in the paper's model),
//! the engine's results are **bit-identical** to the scalar reference:
//! same answer ids, same grades, same `sorted`/`random` counts.
//!
//! One engine value serves any number of concurrent [`TopKRequest`]s —
//! `run` takes `&self`, and [`Engine::run_many`] evaluates a batch of
//! requests on parallel threads against the shared cache.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::thread;

use fmdb_core::score::{Score, ScoredObject};

use crate::algorithms::{AlgoError, Algorithm, TopKAlgorithm, TopKResult};
use crate::lru::LruCore;
use crate::planner::{Explain, PhysicalPlan, PlanQuery, QueryStats};
use crate::policy::Algo;
use crate::request::{SharedSource, TopKRequest};
use crate::source::{GradedSource, Oid, SourceInfo};

/// How many prefetched batches a worker may buffer ahead of the
/// consumer (per stream) before it blocks.
const PREFETCH_DEPTH: usize = 2;

/// Failures the engine can surface for a request.
///
/// The engine must never take down a whole process mid-query: a
/// subsystem panicking inside a prefetch worker (or a request thread
/// dying under [`Engine::run_many`]) is reported as a value, so the
/// caller can fail that one request and keep serving others. This is
/// the error path the workspace linter's `no-panic` rule points
/// library code at.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Algorithm-level validation or execution error, unchanged from
    /// the scalar path.
    Algo(AlgoError),
    /// A worker thread panicked while the query still needed its
    /// stream. `stream` names the source (its [`SourceInfo::label`]) or
    /// the request slot under [`Engine::run_many`]; `message` is the
    /// panic payload when it was a string.
    WorkerPanicked {
        /// Which stream or request died.
        stream: String,
        /// The panic message, best effort.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Algo(e) => write!(f, "{e}"),
            EngineError::WorkerPanicked { stream, message } => {
                write!(f, "worker for {stream} panicked mid-query: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Algo(e) => Some(e),
            EngineError::WorkerPanicked { .. } => None,
        }
    }
}

impl From<AlgoError> for EngineError {
    fn from(e: AlgoError) -> EngineError {
        EngineError::Algo(e)
    }
}

impl From<EngineError> for AlgoError {
    fn from(e: EngineError) -> AlgoError {
        match e {
            EngineError::Algo(e) => e,
            other @ EngineError::WorkerPanicked { .. } => AlgoError::Engine(other.to_string()),
        }
    }
}

/// Renders a caught panic payload as text, best effort.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Tuning knobs for the [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Objects fetched per [`GradedSource::sorted_batch`] call.
    /// Clamped to at least 1.
    pub batch_size: usize,
    /// Spawn one prefetch worker thread per sorted stream. When false
    /// the engine still batches, but fetches lazily on the caller's
    /// thread.
    pub parallel: bool,
    /// Capacity (entries) of the shared random-access [`GradeCache`];
    /// 0 disables caching entirely.
    pub cache_capacity: usize,
    /// Upper bound on intra-query shards for shard-capable algorithms
    /// (those reporting a [`crate::sharded::ShardKernel`]); `0` or `1`
    /// keeps every query on the serial path. See [`crate::sharded`].
    pub shards: usize,
    /// Minimum number of objects each shard should receive: a query
    /// over a universe of `n` objects runs on at most
    /// `n / shard_min_items` shards (at least 1), so tiny queries never
    /// pay thread overhead. Clamped to at least 1.
    pub shard_min_items: usize,
}

impl EngineConfig {
    /// The default: batches of 64, parallel prefetch, 4096 cached
    /// grades, no intra-query sharding.
    pub const DEFAULT: EngineConfig = EngineConfig {
        batch_size: 64,
        parallel: true,
        cache_capacity: 4096,
        shards: 1,
        shard_min_items: 256,
    };

    /// A single-threaded configuration (batched access, no workers).
    pub fn serial() -> EngineConfig {
        EngineConfig {
            parallel: false,
            ..EngineConfig::DEFAULT
        }
    }

    /// A configuration running shard-capable algorithms on up to
    /// `shards` intra-query workers (no minimum shard size — callers
    /// wanting the guard can set
    /// [`EngineConfig::shard_min_items`] themselves).
    #[deprecated(
        note = "shard settings are per-request now: set `ExecPolicy::sharded_over(shards)` \
                (or `ShardPolicy::Shards`) on the request policy"
    )]
    pub fn sharded(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            shard_min_items: 1,
            ..EngineConfig::DEFAULT
        }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::DEFAULT
    }
}

/// Cache key: the registered identity of the shared source handle
/// ([`SourceRegistry`]) plus the oid.
///
/// Keying by handle identity means two requests holding clones of the
/// same [`SharedSource`] share each other's cached grades, while
/// distinct sources never collide — even when a later source's
/// allocation lands on a dead source's address, because identities are
/// never reissued.
type CacheKey = (u64, Oid);

/// Issues a stable, never-reused identity per [`SharedSource`].
///
/// A raw `Arc::as_ptr` key is unsound across requests: once a source
/// dies, its cache entries linger, and a *new* source allocated at the
/// recycled address would hit them and be served another subsystem's
/// grades. The registry therefore keeps a [`Weak`] per known address —
/// which also pins the allocation, so an address cannot be recycled
/// while it is still mapped — and hands out a fresh id whenever the
/// address's previous occupant is gone. Stale entries for dead ids
/// simply age out of the LRU cache.
#[derive(Debug, Default)]
struct SourceRegistry {
    next_id: u64,
    by_ptr: HashMap<usize, (Weak<Mutex<dyn GradedSource + Send>>, u64)>,
}

impl SourceRegistry {
    fn identify(&mut self, source: &SharedSource) -> u64 {
        let ptr = Arc::as_ptr(source) as *const () as usize;
        if let Some((weak, id)) = self.by_ptr.get(&ptr) {
            if weak
                .upgrade()
                .is_some_and(|live| Arc::ptr_eq(&live, source))
            {
                return *id;
            }
        }
        if self.by_ptr.len() >= 4096 {
            self.by_ptr.retain(|_, (weak, _)| weak.strong_count() > 0);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.by_ptr.insert(ptr, (Arc::downgrade(source), id));
        id
    }
}

/// A bounded LRU memo of random-access grades.
///
/// The paper's model makes grades immutable for the duration of a
/// query ("repeated random access for the same object returns the same
/// grade"), so memoization is safe. The cache tracks cumulative
/// [`GradeCache::hits`]/[`GradeCache::misses`]/[`GradeCache::evictions`]
/// across every request it served. The replacement machinery itself is
/// the shared [`LruCore`], which also backs the paged store's buffer
/// pool ([`crate::store`]).
#[derive(Debug)]
pub struct GradeCache {
    core: LruCore<CacheKey, Score>,
    /// Per-source-identity (hits, misses) split of the core's totals —
    /// the raw signal behind the planner's cache-residency hints.
    per_source: HashMap<u64, (u64, u64)>,
}

impl GradeCache {
    /// Creates a cache holding at most `capacity` grades.
    pub fn new(capacity: usize) -> GradeCache {
        GradeCache {
            core: LruCore::new(capacity),
            per_source: HashMap::new(),
        }
    }

    /// Number of grades currently cached.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// Cumulative lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.core.hits()
    }

    /// Cumulative lookups that had to go to the subsystem.
    pub fn misses(&self) -> u64 {
        self.core.misses()
    }

    /// Cumulative grades dropped to make room for newer ones. Together
    /// with [`GradeCache::hits`]/[`GradeCache::misses`] this completes
    /// the replacement picture: a high eviction rate at a given hit
    /// rate means the working set exceeds capacity.
    pub fn evictions(&self) -> u64 {
        self.core.evictions()
    }

    /// Cumulative (hits, misses) charged against one source identity.
    pub fn source_counters(&self, source_id: u64) -> (u64, u64) {
        self.per_source.get(&source_id).copied().unwrap_or((0, 0))
    }

    /// Drops every cached grade **and** resets the hit/miss/eviction
    /// counters.
    ///
    /// The counters describe the lifetime of the cached content; under
    /// the striped cache ([`StripedGradeCache`]) each segment is
    /// cleared independently, and a segment that kept stale counters
    /// after dropping its entries would make the summed snapshot
    /// unintelligible (hits against grades that no longer exist,
    /// mixed across generations). Content and counters reset together.
    pub fn clear(&mut self) {
        self.core.clear();
        self.per_source.clear();
    }

    /// Looks `key` up, refreshing its recency on a hit.
    fn get(&mut self, key: CacheKey) -> Option<Score> {
        let found = self.core.get(key);
        let split = self.per_source.entry(key.0).or_insert((0, 0));
        if found.is_some() {
            split.0 += 1;
        } else {
            split.1 += 1;
        }
        found
    }

    /// Inserts (or refreshes) a grade, evicting the least recently used
    /// entries beyond capacity.
    fn insert(&mut self, key: CacheKey, grade: Score) {
        self.core.insert(key, grade);
    }
}

/// Number of independent LRU segments in the engine's striped cache.
const CACHE_STRIPES: usize = 8;

/// A lock-striped [`GradeCache`]: `N` independent LRU segments, each
/// behind its own mutex, selected by key hash.
///
/// A single-mutex cache serializes every random access of every
/// concurrent worker — request threads under [`Engine::run_many`] and
/// shard workers under the sharded path ([`crate::sharded`]) would all
/// contend on one lock. Striping keeps the hit path a short critical
/// section on 1/N of the key space.
///
/// **Snapshot semantics**: [`StripedGradeCache::counters`] locks the
/// stripes one at a time, so under concurrent traffic the summed pair
/// is a per-stripe-consistent snapshot, not a global linearization —
/// a stripe counted *after* a concurrent hit lands includes it, one
/// counted *before* does not. Both counters are monotone between
/// [`StripedGradeCache::clear`] calls, so any snapshot is bracketed by
/// the true counts at the first and last stripe lock. That "relaxed"
/// guarantee is all the engine promises (and all telemetry needs).
#[derive(Debug)]
pub struct StripedGradeCache {
    stripes: Vec<Mutex<GradeCache>>,
}

impl StripedGradeCache {
    /// Creates `stripes` segments jointly holding at least `capacity`
    /// grades (`capacity` 0 disables caching; `stripes` is clamped to
    /// at least 1).
    pub fn new(capacity: usize, stripes: usize) -> StripedGradeCache {
        let n = stripes.max(1);
        // Round the per-stripe share up so the total never undercuts
        // the requested capacity.
        let per = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(n)
        };
        StripedGradeCache {
            stripes: (0..n).map(|_| Mutex::new(GradeCache::new(per))).collect(),
        }
    }

    /// The segment owning `key`.
    fn stripe(&self, key: CacheKey) -> &Mutex<GradeCache> {
        // Multiplicative mixing of both key halves; the high bits are
        // the best-mixed, so index with them.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        &self.stripes[(h >> 32) as usize % self.stripes.len()]
    }

    fn get(&self, key: CacheKey) -> Option<Score> {
        lock_cache(self.stripe(key)).get(key)
    }

    fn insert(&self, key: CacheKey, grade: Score) {
        lock_cache(self.stripe(key)).insert(key, grade);
    }

    /// Cumulative (hits, misses) summed over all stripes — see the
    /// type docs for the snapshot guarantee.
    pub fn counters(&self) -> (u64, u64) {
        self.stripes.iter().fold((0, 0), |(h, m), s| {
            let guard = lock_cache(s);
            (h + guard.hits(), m + guard.misses())
        })
    }

    /// Cumulative evictions summed over all stripes (same snapshot
    /// guarantee as [`StripedGradeCache::counters`]). Reset together
    /// with the hit/miss counters by [`StripedGradeCache::clear`].
    pub fn evictions(&self) -> u64 {
        self.stripes.iter().map(|s| lock_cache(s).evictions()).sum()
    }

    /// Cumulative (hits, misses) for one source identity, summed over
    /// all stripes (same snapshot guarantee as
    /// [`StripedGradeCache::counters`]). This is the signal the planner
    /// turns into a cache-residency hint.
    pub fn source_counters(&self, source_id: u64) -> (u64, u64) {
        self.stripes.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = lock_cache(s).source_counters(source_id);
            (h + sh, m + sm)
        })
    }

    /// Grades currently cached, summed over all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| lock_cache(s).len()).sum()
    }

    /// True when no stripe holds anything.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| lock_cache(s).is_empty())
    }

    /// Total capacity across stripes.
    pub fn capacity(&self) -> usize {
        self.stripes.iter().map(|s| lock_cache(s).capacity()).sum()
    }

    /// Clears every stripe — entries and counters together (see
    /// [`GradeCache::clear`]). Stripes are cleared one at a time; a
    /// concurrent request may land hits in an already-cleared stripe
    /// before the last one is reached, which the snapshot semantics
    /// above already admit.
    pub fn clear(&self) {
        for s in &self.stripes {
            lock_cache(s).clear();
        }
    }
}

/// The feed behind one proxied stream: either lazily batch-fetched on
/// the consumer's thread, or streamed from a prefetch worker.
enum Feed {
    Serial {
        batch: usize,
    },
    Parallel {
        rx: Receiver<Result<Vec<ScoredObject<Oid>>, String>>,
    },
}

/// The engine's view of one source: sorted access is served from
/// prefetched batches; random access is routed through the grade
/// cache. Implements [`GradedSource`], so the scalar algorithms run on
/// top of it unchanged — and charge exactly the accesses they would
/// charge against the raw source.
struct EngineSource<'a> {
    underlying: &'a SharedSource,
    info: SourceInfo,
    key: u64,
    buffer: VecDeque<ScoredObject<Oid>>,
    drained: bool,
    feed: Feed,
    cache: Option<&'a StripedGradeCache>,
    hits: u64,
    misses: u64,
    /// Set when the prefetch worker died and the algorithm went on to
    /// consume the (now truncated) stream: the run's outcome can no
    /// longer be trusted and is replaced by
    /// [`EngineError::WorkerPanicked`].
    failure: Option<String>,
}

impl<'a> EngineSource<'a> {
    fn new(
        underlying: &'a SharedSource,
        info: SourceInfo,
        key: u64,
        feed: Feed,
        cache: Option<&'a StripedGradeCache>,
    ) -> EngineSource<'a> {
        EngineSource {
            key,
            underlying,
            info,
            buffer: VecDeque::new(),
            drained: false,
            feed,
            cache,
            hits: 0,
            misses: 0,
            failure: None,
        }
    }

    /// Refills the buffer with the next batch, if any remains.
    fn refill(&mut self) {
        while self.buffer.is_empty() && !self.drained {
            match &self.feed {
                Feed::Serial { batch } => {
                    let items = lock(self.underlying).sorted_batch(*batch);
                    if items.len() < *batch {
                        self.drained = true;
                    }
                    self.buffer.extend(items);
                }
                Feed::Parallel { rx } => match rx.recv() {
                    Ok(Ok(items)) => self.buffer.extend(items),
                    Ok(Err(message)) => {
                        // The worker panicked *and* the algorithm asked
                        // for the batch it was fetching: record the
                        // failure so the run is rejected, and present
                        // the stream as drained so the algorithm
                        // terminates instead of blocking forever.
                        self.failure = Some(message);
                        self.drained = true;
                    }
                    Err(_) => self.drained = true,
                },
            }
        }
    }
}

impl GradedSource for EngineSource<'_> {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        self.refill();
        self.buffer.pop_front()
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        let Some(cache) = self.cache else {
            return lock(self.underlying).random_access(oid);
        };
        let key = (self.key, oid);
        if let Some(grade) = cache.get(key) {
            self.hits += 1;
            return grade;
        }
        // Probe outside the stripe lock: the subsystem may be slow, and
        // prefetch workers contend on the same source mutex.
        let grade = lock(self.underlying).random_access(oid);
        self.misses += 1;
        cache.insert(key, grade);
        grade
    }

    /// The engine rewinds the underlying sources before constructing
    /// its proxies, so the initial `rewind()` every algorithm issues is
    /// a no-op here. Mid-run rewinds are only honoured on the serial
    /// feed (a parallel prefetch stream cannot be replayed).
    fn rewind(&mut self) {
        if let Feed::Serial { .. } = self.feed {
            if self.drained || !self.buffer.is_empty() {
                lock(self.underlying).rewind();
            }
            self.buffer.clear();
            self.drained = false;
        }
    }

    fn info(&self) -> SourceInfo {
        self.info.clone()
    }
}

fn lock(source: &SharedSource) -> std::sync::MutexGuard<'_, dyn GradedSource + Send + 'static> {
    source.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_cache(cache: &Mutex<GradeCache>) -> std::sync::MutexGuard<'_, GradeCache> {
    cache.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One prefetch worker: drains a source in batches into a bounded
/// channel until the stream ends, the consumer hangs up, or the
/// subsystem panics (the panic is caught and forwarded as a value —
/// a dying worker must fail its request, never the process).
fn prefetch_worker(
    source: SharedSource,
    tx: SyncSender<Result<Vec<ScoredObject<Oid>>, String>>,
    batch: usize,
) {
    loop {
        // Fetch under the lock, send after releasing it: a blocking
        // send must never hold the source mutex (random access needs
        // it). The panic is caught *inside* the guard's scope, so the
        // mutex is unlocked normally and never poisoned.
        let items = {
            let mut guard = source.lock().unwrap_or_else(PoisonError::into_inner);
            match catch_unwind(AssertUnwindSafe(|| guard.sorted_batch(batch))) {
                Ok(items) => items,
                Err(payload) => {
                    let _ = tx.send(Err(panic_message(payload.as_ref())));
                    return;
                }
            }
        };
        let last = items.len() < batch;
        if tx.send(Ok(items)).is_err() || last {
            break;
        }
    }
}

/// The batched, parallel execution engine. See the [module
/// docs](crate::engine) for the design.
///
/// `run` takes `&self`: share one engine (e.g. behind an `Arc`) and
/// issue any number of requests concurrently — they cooperate through
/// the same bounded grade cache.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cache: StripedGradeCache,
    registry: Mutex<SourceRegistry>,
    totals: EngineTotals,
}

/// Cumulative access totals over every request an engine served, for
/// cross-run telemetry (`BENCH_engine.json`). Relaxed atomics: the
/// counters are monotone and independent, so a reader gets a valid
/// per-counter snapshot, not a cross-counter linearization.
#[derive(Debug, Default)]
struct EngineTotals {
    sorted: std::sync::atomic::AtomicU64,
    random: std::sync::atomic::AtomicU64,
    cache_hits: std::sync::atomic::AtomicU64,
    cache_misses: std::sync::atomic::AtomicU64,
    worker_spawns: std::sync::atomic::AtomicU64,
    page_reads: std::sync::atomic::AtomicU64,
    page_hits: std::sync::atomic::AtomicU64,
    page_evictions: std::sync::atomic::AtomicU64,
    pages_skipped: std::sync::atomic::AtomicU64,
    blocks_skipped: std::sync::atomic::AtomicU64,
}

impl EngineTotals {
    fn fold(&self, stats: &crate::stats::AccessStats) {
        use std::sync::atomic::Ordering::Relaxed;
        // ordering(Relaxed): telemetry-only counter merge — each field
        // is an independent monotone sum, no reader orders decisions
        // against these values, and the final fold happens after the
        // shard threads are joined (the join is the synchronization).
        self.sorted.fetch_add(stats.sorted, Relaxed);
        self.random.fetch_add(stats.random, Relaxed);
        self.cache_hits.fetch_add(stats.cache_hits, Relaxed);
        self.cache_misses.fetch_add(stats.cache_misses, Relaxed);
        self.worker_spawns.fetch_add(stats.worker_spawns, Relaxed);
        self.page_reads.fetch_add(stats.page_reads, Relaxed);
        self.page_hits.fetch_add(stats.page_hits, Relaxed);
        self.page_evictions.fetch_add(stats.page_evictions, Relaxed);
        self.pages_skipped.fetch_add(stats.pages_skipped, Relaxed);
        self.blocks_skipped.fetch_add(stats.blocks_skipped, Relaxed);
    }

    fn snapshot(&self) -> crate::stats::AccessStats {
        use std::sync::atomic::Ordering::Relaxed;
        crate::stats::AccessStats {
            // ordering(Relaxed): report-time read of telemetry
            // counters; a snapshot taken concurrently with updates may
            // be slightly stale per field, which the stats contract
            // permits — nothing branches on these values.
            sorted: self.sorted.load(Relaxed),
            random: self.random.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            worker_spawns: self.worker_spawns.load(Relaxed),
            page_reads: self.page_reads.load(Relaxed),
            page_hits: self.page_hits.load(Relaxed),
            page_evictions: self.page_evictions.load(Relaxed),
            pages_skipped: self.pages_skipped.load(Relaxed),
            blocks_skipped: self.blocks_skipped.load(Relaxed),
        }
    }
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineConfig::DEFAULT)
    }
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            cache: StripedGradeCache::new(config.cache_capacity, CACHE_STRIPES),
            registry: Mutex::new(SourceRegistry::default()),
            totals: EngineTotals::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Cumulative cache (hits, misses) over every request served —
    /// summed over the cache stripes, with the snapshot semantics
    /// documented on [`StripedGradeCache::counters`].
    pub fn cache_counters(&self) -> (u64, u64) {
        self.cache.counters()
    }

    /// Cumulative cache evictions over every request served — the
    /// third replacement counter alongside [`Engine::cache_counters`],
    /// reset together with them by [`Engine::clear_cache`].
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Drops every cached grade and resets the cache counters (see
    /// [`GradeCache::clear`]).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Cumulative cache (hits, misses) charged against `source` across
    /// every request served. The hit fraction is the cache-residency
    /// hint [`Engine::explain`] attaches to the source's statistics —
    /// a *latency* signal only: the paper's charged cost counts a
    /// cache-served random access all the same, so residency never
    /// changes which plan the charged-cost comparison picks.
    pub fn source_cache_counters(&self, source: &SharedSource) -> (u64, u64) {
        let id = {
            let mut registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
            registry.identify(source)
        };
        self.cache.source_counters(id)
    }

    /// Cumulative [`crate::stats::AccessStats`] folded over every
    /// *successful* request this engine has served. Monotone; diff two
    /// snapshots to meter a workload.
    pub fn access_totals(&self) -> crate::stats::AccessStats {
        self.totals.snapshot()
    }

    /// Evaluates a request as its [`crate::policy::ExecPolicy`]
    /// prescribes and runs it through [`Engine::run_algorithm`].
    ///
    /// An explicit [`crate::policy::Algo`] resolves as named.
    /// [`crate::policy::Algo::Auto`] routes through the unified
    /// cost-based planner ([`crate::planner::choose_plan`]): the engine
    /// gathers per-source grade histograms via
    /// [`GradedSource::grade_histogram`], prices every applicable
    /// strategy under the policy's cost model, and executes the
    /// cheapest. When any source cannot provide statistics, the
    /// planner's documented static fallback (NRA-or-TA, never A₀)
    /// applies. [`Engine::explain`] exposes the same decision without
    /// executing it.
    pub fn run(&self, request: &TopKRequest) -> Result<TopKResult, EngineError> {
        let algorithm = self.resolve(request)?;
        self.run_algorithm(algorithm.as_ref(), request)
    }

    /// The planner's decision record for `request` — the plan
    /// [`Engine::run`] would execute, every candidate's estimated
    /// charged cost, and the statistics it was based on — without
    /// running the query or charging any accesses. For an explicit
    /// (non-`Auto`) policy the record reflects that forced choice.
    pub fn explain(&self, request: &TopKRequest) -> Result<Explain, EngineError> {
        // Surface invalid-knob errors exactly like `run`.
        let algorithm = request.policy().algorithm()?;
        let mut explain = self.plan(request);
        if !matches!(request.policy().algo, Algo::Auto) {
            let forced = [
                PhysicalPlan::Fa,
                PhysicalPlan::Ta,
                PhysicalPlan::Nra,
                PhysicalPlan::Ca {
                    h: request.policy().interleave(),
                },
                PhysicalPlan::ApproxTa,
                PhysicalPlan::ApproxNra,
                PhysicalPlan::MaxMerge,
            ]
            .into_iter()
            .find(|p| p.name() == algorithm.name());
            if let Some(plan) = forced {
                explain.chosen = plan;
            }
        }
        Ok(explain)
    }

    /// Resolves the request's policy to the algorithm `run` executes:
    /// explicit choices as named, `Auto` through the cost-based
    /// planner.
    fn resolve(
        &self,
        request: &TopKRequest,
    ) -> Result<Box<dyn TopKAlgorithm + Send + Sync>, EngineError> {
        // Always resolve statically first: it validates the policy
        // knobs (θ, cost units) and is the documented fallback.
        let fallback = request.policy().algorithm()?;
        if !matches!(request.policy().algo, Algo::Auto) {
            return Ok(fallback);
        }
        let explain = self.plan(request);
        let theta = request.policy().approximation.theta();
        Ok(
            match crate::planner::plan_algorithm(explain.chosen, theta) {
                Some(algorithm) => algorithm,
                // Plans above the algorithm layer: a full scan is the
                // naive drain; anything else falls back to the static
                // choice (unreachable for engine-shaped queries, which
                // have no crisp structure).
                None => match explain.chosen {
                    PhysicalPlan::FullScan => Box::new(crate::algorithms::naive::Naive),
                    _ => fallback,
                },
            },
        )
    }

    /// Gathers statistics and runs the planner for `request` under its
    /// policy, treating the query as a plain fuzzy top-k (the engine
    /// has no crisp-predicate structure; the Garlic layer adds that).
    fn plan(&self, request: &TopKRequest) -> Explain {
        let m = request.sources().len();
        let mut n = 0usize;
        let mut per_source = Vec::with_capacity(m);
        for source in request.sources() {
            // Residency hint: the fraction of this source's past random
            // accesses the grade cache answered (0 when never probed).
            let (hits, misses) = self.source_cache_counters(source);
            let probed = hits + misses;
            let residency = if probed == 0 {
                0.0
            } else {
                hits as f64 / probed as f64
            };
            let guard = lock(source);
            n = n.max(guard.info().universe_size);
            per_source.push(
                guard
                    .grade_histogram(fmdb_core::stats::DEFAULT_HISTOGRAM_BINS)
                    .map(|h| crate::stats::SourceStats::new(h).with_residency(residency)),
            );
        }
        // Partial statistics would skew the comparison: all-or-nothing.
        let stats: Option<QueryStats> = per_source
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .map(QueryStats::new);
        let combiner = crate::planner::classify_combiner(request.scoring().as_ref(), m.max(1));
        let query = PlanQuery::fuzzy(n, m, request.k()).combiner(combiner);
        crate::planner::choose_plan(&query, stats.as_ref(), request.policy())
    }

    /// Evaluates a request with any scalar [`TopKAlgorithm`] as the
    /// merge strategy. The algorithm's code path is unchanged — it
    /// consumes engine-buffered proxies instead of raw sources — so the
    /// result (answers *and* charged `sorted`/`random` counts) is
    /// bit-identical to the scalar run; the engine only adds the
    /// [`AccessStats::cache_hits`]/[`AccessStats::cache_misses`] split.
    pub fn run_algorithm(
        &self,
        algorithm: &dyn TopKAlgorithm,
        request: &TopKRequest,
    ) -> Result<TopKResult, EngineError> {
        let result = match algorithm.shard_kernel() {
            Some(kernel) => match self.try_sharded(kernel, request)? {
                Some(result) => Ok(result),
                None => self.run_serial(algorithm, request),
            },
            None => self.run_serial(algorithm, request),
        }?;
        self.totals.fold(&result.stats);
        Ok(result)
    }

    /// The sharded execution path (see [`crate::sharded`]): partitions
    /// every source with one consistent partitioner and fans the query
    /// out over shard workers. Returns `Ok(None)` — "use the serial
    /// path" — when the effective configuration disables sharding, the
    /// universe is too small for the configured minimum shard size, or
    /// any source cannot be partitioned.
    ///
    /// The effective shard settings are the engine's, unless the
    /// request's [`crate::policy::ShardPolicy`] overrides them.
    fn try_sharded(
        &self,
        kernel: crate::sharded::ShardKernel,
        request: &TopKRequest,
    ) -> Result<Option<TopKResult>, EngineError> {
        let (max_shards, min_items) = request
            .policy()
            .effective_shards(self.config.shards, self.config.shard_min_items);
        if max_shards < 2 {
            return Ok(None);
        }
        // Mirror the scalar `validate` checks (same errors, same
        // order) so the two paths reject bad requests identically.
        let scoring = request.scoring();
        if request.sources().is_empty() {
            return Err(AlgoError::NoSources.into());
        }
        if request.k() == 0 {
            return Err(AlgoError::ZeroK.into());
        }
        if !scoring.is_monotone() {
            return Err(AlgoError::NonMonotoneScoring(scoring.name()).into());
        }
        let universe = request
            .sources()
            .iter()
            .map(|s| lock(s).info().universe_size)
            .min()
            .unwrap_or(0);
        let shards = max_shards.min(universe / min_items.max(1));
        if shards < 2 {
            return Ok(None);
        }
        let Some(partitioned) = crate::sharded::partition_aligned(
            request.sources(),
            crate::source::SourcePartitioner::Modulo,
            shards,
        ) else {
            return Ok(None);
        };
        crate::sharded::run_shards(kernel, partitioned, &scoring, request.k()).map(Some)
    }

    /// The serial (per-request single-threaded merge) path: batched
    /// sorted access, optional prefetch workers, shared grade cache.
    fn run_serial(
        &self,
        algorithm: &dyn TopKAlgorithm,
        request: &TopKRequest,
    ) -> Result<TopKResult, EngineError> {
        let scoring = request.scoring();
        let k = request.k();
        let batch = self.config.batch_size.max(1);
        // Rewind and snapshot metadata before any worker starts
        // pulling, so every stream begins at the top grade.
        let infos: Vec<SourceInfo> = request
            .sources()
            .iter()
            .map(|s| {
                let mut guard = lock(s);
                guard.rewind();
                guard.info()
            })
            .collect();
        let cache = (self.config.cache_capacity > 0).then_some(&self.cache);
        // Snapshot per-source page counters so disk-backed sources'
        // buffer-pool traffic can be attributed to this request
        // afterwards (purely in-memory sources report `None`).
        let page_before: Vec<Option<crate::stats::PageIoStats>> = request
            .sources()
            .iter()
            .map(|s| lock(s).page_io())
            .collect();
        let keys: Vec<u64> = {
            let mut registry = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
            request
                .sources()
                .iter()
                .map(|s| registry.identify(s))
                .collect()
        };

        let (mut result, hits, misses) = if self.config.parallel {
            thread::scope(|scope| {
                let mut proxies: Vec<EngineSource> = Vec::with_capacity(infos.len());
                for ((source, info), &key) in request.sources().iter().zip(&infos).zip(&keys) {
                    let (tx, rx) = sync_channel(PREFETCH_DEPTH);
                    let worker_source = Arc::clone(source);
                    scope.spawn(move || prefetch_worker(worker_source, tx, batch));
                    proxies.push(EngineSource::new(
                        source,
                        info.clone(),
                        key,
                        Feed::Parallel { rx },
                        cache,
                    ));
                }
                run_over(algorithm, &mut proxies, &*scoring, k)
                // Proxies (and their receivers) drop here; workers
                // observe the hang-up and exit before the scope joins.
            })
        } else {
            let mut proxies: Vec<EngineSource> = request
                .sources()
                .iter()
                .zip(&infos)
                .zip(&keys)
                .map(|((source, info), &key)| {
                    EngineSource::new(source, info.clone(), key, Feed::Serial { batch }, cache)
                })
                .collect();
            run_over(algorithm, &mut proxies, &*scoring, k)
        }?;

        result.stats.cache_hits = hits;
        result.stats.cache_misses = misses;
        if self.config.parallel {
            // One prefetch worker was spawned per stream.
            result.stats.worker_spawns += infos.len() as u64;
        }
        // Fold the page-traffic delta of every paged source into the
        // request's stats. Sources sharing one store's pool would be
        // double counted — each query source is expected to map to its
        // own store file. (The sharded path skips this: shards run on
        // materialized partitions, their page reads happened at
        // partition time.)
        for (source, before) in request.sources().iter().zip(page_before) {
            if let (Some(now), Some(before)) = (lock(source).page_io(), before) {
                let delta = now - before;
                result.stats.page_reads += delta.reads;
                result.stats.page_hits += delta.hits;
                result.stats.page_evictions += delta.evictions;
                result.stats.pages_skipped += delta.skipped;
            }
        }
        Ok(result)
    }

    /// Evaluates several requests concurrently on a scoped worker
    /// *pool*, sharing the engine's grade cache. Results are returned
    /// in request order. A request that panics on a pool thread yields
    /// [`EngineError::WorkerPanicked`] in its slot — one bad request
    /// never takes down its batch.
    ///
    /// The pool spawns `min(available_parallelism, requests.len())`
    /// workers that claim request slots from a shared counter, instead
    /// of one thread per request: a batch of 10 000 requests costs a
    /// handful of spawns, not 10 000. Each pool worker charges one
    /// [`crate::stats::AccessStats::worker_spawns`] to the first
    /// request it completes successfully (per-request prefetch/shard
    /// workers are charged to their own requests as usual).
    pub fn run_many(&self, requests: &[TopKRequest]) -> Vec<Result<TopKResult, EngineError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(requests.len());
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<TopKResult, EngineError>>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let slots = &slots;
                scope.spawn(move || {
                    let mut charged = false;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(request) = requests.get(i) else {
                            break;
                        };
                        // The engine already contains panics from its
                        // own workers; this net also catches panics on
                        // the pool thread itself (e.g. a subsystem
                        // exploding under a serial feed).
                        let mut outcome = match catch_unwind(AssertUnwindSafe(|| self.run(request)))
                        {
                            Ok(result) => result,
                            Err(payload) => Err(EngineError::WorkerPanicked {
                                stream: format!("request {i}"),
                                message: panic_message(payload.as_ref()),
                            }),
                        };
                        if !charged {
                            if let Ok(result) = &mut outcome {
                                result.stats.worker_spawns += 1;
                                self.totals
                                    .worker_spawns
                                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                charged = true;
                            }
                        }
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // Unreachable: every slot index below
                        // requests.len() is claimed exactly once and
                        // written before its worker exits.
                        Err(EngineError::WorkerPanicked {
                            stream: "request pool".to_owned(),
                            message: "request slot never served".to_owned(),
                        })
                    })
            })
            .collect()
    }
}

/// Runs the scalar algorithm over the proxies and folds the proxies'
/// cache counters into the outcome.
///
/// A recorded stream failure takes precedence over whatever the
/// algorithm produced: once a worker died on a batch the algorithm
/// actually consumed, neither its answers nor its error are
/// trustworthy. Panics on batches the algorithm never asked for
/// (speculative read-ahead past the run's needs) leave no trace and
/// don't fail the request — the scalar reference would not have
/// fetched them either.
fn run_over(
    algorithm: &dyn TopKAlgorithm,
    proxies: &mut [EngineSource<'_>],
    scoring: &dyn fmdb_core::scoring::ScoringFunction,
    k: usize,
) -> Result<(TopKResult, u64, u64), EngineError> {
    let mut refs: Vec<&mut dyn GradedSource> = proxies
        .iter_mut()
        .map(|p| p as &mut dyn GradedSource)
        .collect();
    let outcome = algorithm.top_k(&mut refs, scoring, k);
    drop(refs);
    if let Some((stream, message)) = proxies
        .iter_mut()
        .find_map(|p| p.failure.take().map(|m| (p.info.label.clone(), m)))
    {
        return Err(EngineError::WorkerPanicked { stream, message });
    }
    let result = outcome?;
    let hits = proxies.iter().map(|p| p.hits).sum();
    let misses = proxies.iter().map(|p| p.misses).sum();
    Ok((result, hits, misses))
}

impl Algorithm for Engine {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn run(&mut self, request: &TopKRequest) -> Result<TopKResult, AlgoError> {
        Engine::run(self, request).map_err(AlgoError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::fa::FaginsAlgorithm;
    use crate::algorithms::naive::Naive;
    use crate::algorithms::ta::ThresholdAlgorithm;
    use crate::oracle::verify_top_k;
    use crate::policy::{ExecPolicy, ShardPolicy};
    use crate::request::{shared_source, TopKQuery};
    use crate::stats::CostModel;
    use crate::workload::independent_uniform;
    use fmdb_core::scoring::tnorms::Min;

    /// Scalar reference run over a fresh copy of the same workload.
    fn scalar(algo: &dyn TopKAlgorithm, n: usize, m: usize, seed: u64, k: usize) -> TopKResult {
        let mut sources = independent_uniform(n, m, seed);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        algo.top_k(&mut refs, &Min, k).unwrap()
    }

    /// A request pinned to Fagin's A₀ — the bit-identity tests compare
    /// against scalar A₀ runs, so the planner must not re-route them.
    fn request(n: usize, m: usize, seed: u64, k: usize) -> TopKRequest {
        TopKQuery::compose()
            .sources(independent_uniform(n, m, seed))
            .scoring(Min)
            .k(k)
            .policy(ExecPolicy::new().algo(crate::policy::Algo::Fa))
            .request()
            .unwrap()
    }

    /// `EngineConfig::sharded` is deprecated (sharding is a request
    /// policy now); the struct-literal spelling configures the same
    /// engine-level default.
    fn sharded_config(shards: usize) -> EngineConfig {
        EngineConfig {
            shards,
            shard_min_items: 1,
            ..EngineConfig::DEFAULT
        }
    }

    /// Regression: one long-lived engine serving a run of short-lived
    /// requests. Each round's sources die before the next round's are
    /// allocated, so without registered source identities the new
    /// allocations can land on cached addresses and be served the
    /// *previous* workload's grades (observed as nondeterministic TA
    /// costs in the e13 experiment binary).
    #[test]
    fn fresh_sources_never_see_stale_cached_grades() {
        let engine = Engine::default();
        for round in 0..25u64 {
            let result = engine.run(&request(300, 3, round, 10)).unwrap();
            let reference = scalar(&FaginsAlgorithm, 300, 3, round, 10);
            assert_eq!(result.answers, reference.answers, "round {round}");
            assert_eq!(result.stats.sorted, reference.stats.sorted, "round {round}");
            assert_eq!(result.stats.random, reference.stats.random, "round {round}");
        }
    }

    /// The default policy (`Algo::Auto`) routes through the unified
    /// cost-based planner: sources provide histograms, every strategy
    /// is priced, and the executed algorithm is the planner's choice —
    /// NRA for independent-uniform grades under uniform costs (its
    /// sorted-only cost is roughly half of TA's or A₀'s).
    #[test]
    fn default_auto_routes_through_the_planner() {
        let engine = Engine::default();
        let req = TopKQuery::compose()
            .sources(independent_uniform(300, 3, 7))
            .scoring(Min)
            .k(10)
            .request()
            .unwrap();
        let explain = engine.explain(&req).unwrap();
        assert_eq!(explain.chosen.name(), "nra-lower-bound", "{explain}");
        assert!(matches!(
            explain.basis,
            crate::planner::StatsBasis::Histograms { sources: 3 }
        ));
        assert!(explain.candidates.len() >= 3, "{explain}");
        // The run executes exactly the explained plan: NRA performs no
        // random accesses, unlike the old Auto → A₀ default.
        let result = engine.run(&req).unwrap();
        assert_eq!(result.stats.random, 0, "NRA is sorted-only");
        verify_top_k(
            &mut independent_uniform(300, 3, 7)
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect::<Vec<_>>(),
            &Min,
            &result.answers,
            10,
        )
        .unwrap();
        // Explicit policies are untouched by the planner.
        let forced = engine.explain(&request(300, 3, 7, 10)).unwrap();
        assert_eq!(forced.chosen.name(), "fagin-a0");
    }

    #[test]
    fn registry_reuses_ids_for_live_sources_only() {
        let mut registry = SourceRegistry::default();
        let a = shared_source(independent_uniform(10, 1, 1).remove(0));
        let id_a = registry.identify(&a);
        assert_eq!(registry.identify(&a), id_a, "same handle, same id");
        assert_eq!(registry.identify(&Arc::clone(&a)), id_a, "clone, same id");
        let b = shared_source(independent_uniform(10, 1, 2).remove(0));
        assert_ne!(registry.identify(&b), id_a, "distinct handle, fresh id");
        drop(a);
        // While the registry's weak handle pins the dead allocation, no
        // new source can occupy its address, so ids never alias.
        let c = shared_source(independent_uniform(10, 1, 3).remove(0));
        let id_c = registry.identify(&c);
        assert_ne!(id_c, id_a);
    }

    #[test]
    fn engine_fa_is_bit_identical_to_scalar_fa() {
        for &(n, m, k) in &[(500usize, 2usize, 5usize), (300, 3, 10), (200, 4, 7)] {
            let reference = scalar(&FaginsAlgorithm, n, m, 99, k);
            for config in [
                EngineConfig::DEFAULT,
                EngineConfig::serial(),
                EngineConfig {
                    batch_size: 1,
                    parallel: true,
                    cache_capacity: 8,
                    ..EngineConfig::DEFAULT
                },
                EngineConfig {
                    batch_size: 1000,
                    parallel: false,
                    cache_capacity: 0,
                    ..EngineConfig::DEFAULT
                },
            ] {
                let engine = Engine::new(config);
                let got = engine.run(&request(n, m, 99, k)).unwrap();
                assert_eq!(got.answers, reference.answers, "{config:?}");
                assert_eq!(got.stats.sorted, reference.stats.sorted, "{config:?}");
                assert_eq!(got.stats.random, reference.stats.random, "{config:?}");
            }
        }
    }

    #[test]
    fn engine_results_verify_against_the_oracle() {
        let engine = Engine::default();
        let result = engine.run(&request(400, 3, 7, 12)).unwrap();
        let mut sources = independent_uniform(400, 3, 7);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        verify_top_k(&mut refs, &Min, &result.answers, 12).unwrap();
    }

    #[test]
    fn cache_split_accounts_for_every_random_access() {
        let engine = Engine::default();
        let result = engine.run(&request(400, 2, 3, 8)).unwrap();
        assert_eq!(
            result.stats.cache_hits + result.stats.cache_misses,
            result.stats.random,
            "with the cache on, every random access is a hit or a miss"
        );
    }

    #[test]
    fn shared_sources_hit_the_cache_across_requests() {
        // Two requests over the *same* shared handles: the second run's
        // random accesses were all probed (and cached) by the first.
        let handles: Vec<SharedSource> = independent_uniform(500, 2, 11)
            .into_iter()
            .map(shared_source)
            .collect();
        let build = || {
            let mut b = TopKQuery::compose();
            for h in &handles {
                b = b.shared_source(Arc::clone(h));
            }
            // Pin A₀: under `Algo::Auto` the planner picks the
            // sorted-only NRA here, which never touches the cache.
            b.scoring(Min)
                .k(6)
                .policy(ExecPolicy::new().algo(crate::policy::Algo::Fa))
                .request()
                .unwrap()
        };
        let engine = Engine::default();
        let first = engine.run(&build()).unwrap();
        let second = engine.run(&build()).unwrap();
        // Logical charges are unaffected by caching …
        assert_eq!(first.answers, second.answers);
        assert_eq!(first.stats.sorted, second.stats.sorted);
        assert_eq!(first.stats.random, second.stats.random);
        // … but the second run is served from the cache.
        assert_eq!(second.stats.cache_hits, second.stats.random);
        assert_eq!(second.stats.cache_misses, 0);
        let (hits, misses) = engine.cache_counters();
        assert_eq!(hits, second.stats.cache_hits);
        assert_eq!(misses, first.stats.cache_misses);
    }

    #[test]
    fn per_source_counters_split_the_totals_and_reset_on_clear() {
        let handles: Vec<SharedSource> = independent_uniform(400, 2, 21)
            .into_iter()
            .map(shared_source)
            .collect();
        let build = || {
            let mut b = TopKQuery::compose();
            for h in &handles {
                b = b.shared_source(Arc::clone(h));
            }
            b.scoring(Min)
                .k(6)
                .policy(ExecPolicy::new().algo(crate::policy::Algo::Fa))
                .request()
                .unwrap()
        };
        let engine = Engine::default();
        engine.run(&build()).unwrap();
        engine.run(&build()).unwrap();
        let per: Vec<(u64, u64)> = handles
            .iter()
            .map(|h| engine.source_cache_counters(h))
            .collect();
        // The per-source splits partition the engine-wide totals …
        let (hits, misses) = engine.cache_counters();
        assert_eq!(per.iter().map(|p| p.0).sum::<u64>(), hits);
        assert_eq!(per.iter().map(|p| p.1).sum::<u64>(), misses);
        // … and A₀ random-accessed (and re-hit) every source.
        for (i, &(h, m)) in per.iter().enumerate() {
            assert!(h > 0 && m > 0, "source {i} counters {h}/{m}");
        }
        // clear() drops the per-source splits with the totals.
        engine.clear_cache();
        for h in &handles {
            assert_eq!(engine.source_cache_counters(h), (0, 0));
        }
    }

    #[test]
    fn disabled_cache_reports_no_counters() {
        let engine = Engine::new(EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::DEFAULT
        });
        let result = engine.run(&request(200, 2, 5, 4)).unwrap();
        assert!(result.stats.random > 0);
        assert_eq!(result.stats.cache_hits, 0);
        assert_eq!(result.stats.cache_misses, 0);
    }

    #[test]
    fn other_merge_strategies_run_through_the_engine() {
        for algo in [&Naive as &dyn TopKAlgorithm, &ThresholdAlgorithm] {
            let reference = scalar(algo, 250, 3, 5, 9);
            let engine = Engine::default();
            let got = engine.run_algorithm(algo, &request(250, 3, 5, 9)).unwrap();
            assert_eq!(got.answers, reference.answers, "{}", algo.name());
            assert_eq!(got.stats.sorted, reference.stats.sorted);
            assert_eq!(got.stats.random, reference.stats.random);
        }
    }

    #[test]
    fn run_many_serves_concurrent_requests() {
        let engine = Engine::default();
        let requests: Vec<TopKRequest> = (0..6).map(|i| request(300, 2, i as u64, 1 + i)).collect();
        let results = engine.run_many(&requests);
        assert_eq!(results.len(), 6);
        for (i, result) in results.into_iter().enumerate() {
            let reference = scalar(&FaginsAlgorithm, 300, 2, i as u64, 1 + i);
            assert_eq!(result.unwrap().answers, reference.answers, "request {i}");
        }
    }

    #[test]
    fn engine_implements_the_algorithm_trait() {
        let mut engine = Engine::default();
        let strategy: &mut dyn Algorithm = &mut engine;
        assert_eq!(strategy.name(), "engine");
        let result = strategy.run(&request(100, 2, 1, 3)).unwrap();
        assert_eq!(result.answers.len(), 3);
    }

    #[test]
    fn engine_propagates_validation_errors() {
        #[derive(Debug)]
        struct NotMonotone;
        impl fmdb_core::scoring::ScoringFunction for NotMonotone {
            fn name(&self) -> String {
                "not-monotone".into()
            }
            fn combine(&self, grades: &[Score]) -> Score {
                grades.first().copied().unwrap_or(Score::ZERO)
            }
            fn is_strict(&self) -> bool {
                false
            }
            fn is_monotone(&self) -> bool {
                false
            }
        }
        let engine = Engine::default();
        let non_monotone = TopKQuery::compose()
            .sources(independent_uniform(50, 2, 1))
            .scoring(NotMonotone)
            .k(3)
            .request()
            .unwrap();
        assert!(matches!(
            engine.run(&non_monotone),
            Err(EngineError::Algo(AlgoError::NonMonotoneScoring(_)))
        ));
    }

    /// A subsystem that serves a few batches, then panics mid-stream.
    #[derive(Debug)]
    struct ExplodingSource {
        inner: crate::source::VecSource,
        served: usize,
        fuse: usize,
    }

    impl GradedSource for ExplodingSource {
        fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
            assert!(self.served < self.fuse, "subsystem exploded mid-stream");
            self.served += 1;
            self.inner.sorted_next()
        }
        fn random_access(&mut self, oid: Oid) -> Score {
            self.inner.random_access(oid)
        }
        fn rewind(&mut self) {
            self.inner.rewind();
        }
        fn info(&self) -> SourceInfo {
            self.inner.info()
        }
    }

    #[test]
    fn worker_panic_fails_the_request_not_the_process() {
        let mut sources = independent_uniform(400, 2, 21);
        let healthy = sources.pop().expect("workload has two sources");
        let exploding = ExplodingSource {
            inner: sources.pop().expect("workload has two sources"),
            served: 0,
            fuse: 5,
        };
        let bad = TopKQuery::compose()
            .source(exploding)
            .source(healthy)
            .scoring(Min)
            .k(50)
            .request()
            .unwrap();
        let engine = Engine::default();
        match engine.run(&bad) {
            Err(EngineError::WorkerPanicked { message, .. }) => {
                assert!(message.contains("exploded"), "got: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The engine survives and keeps serving healthy requests.
        let ok = engine.run(&request(300, 2, 1, 5)).unwrap();
        assert_eq!(ok.answers.len(), 5);
    }

    #[test]
    fn run_many_contains_panicking_requests() {
        let mut sources = independent_uniform(200, 2, 33);
        let healthy = sources.pop().expect("workload has two sources");
        let exploding = ExplodingSource {
            inner: sources.pop().expect("workload has two sources"),
            served: 0,
            fuse: 3,
        };
        let bad = TopKQuery::compose()
            .source(exploding)
            .source(healthy)
            .scoring(Min)
            .k(40)
            .request()
            .unwrap();
        let good = request(150, 2, 2, 4);
        let results = Engine::default().run_many(&[bad, good]);
        assert!(matches!(
            results[0],
            Err(EngineError::WorkerPanicked { .. })
        ));
        assert_eq!(results[1].as_ref().unwrap().answers.len(), 4);
    }

    #[test]
    fn grade_cache_is_bounded_and_lru() {
        let mut cache = GradeCache::new(2);
        let g = Score::clamped(0.5);
        cache.insert((0, 1), g);
        cache.insert((0, 2), g);
        assert_eq!(cache.len(), 2);
        // Touch key 1 so key 2 becomes the eviction victim.
        assert!(cache.get((0, 1)).is_some());
        cache.insert((0, 3), g);
        assert_eq!(cache.len(), 2);
        assert!(cache.get((0, 1)).is_some(), "recently used survives");
        assert!(cache.get((0, 2)).is_none(), "LRU victim evicted");
        assert!(cache.get((0, 3)).is_some());
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 2);
        // Counters reset with the content (see `GradeCache::clear`).
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn striped_cache_roundtrips_and_clears_consistently() {
        let cache = StripedGradeCache::new(64, 8);
        assert!(cache.capacity() >= 64);
        let g = Score::clamped(0.7);
        for oid in 0..32u64 {
            cache.insert((1, oid), g);
        }
        assert_eq!(cache.len(), 32);
        for oid in 0..32u64 {
            assert_eq!(cache.get((1, oid)), Some(g), "oid {oid}");
        }
        assert_eq!(cache.get((1, 999)), None);
        assert_eq!(cache.counters(), (32, 1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.counters(), (0, 0), "clear resets every stripe");
        // Disabled cache stays disabled per stripe.
        let off = StripedGradeCache::new(0, 8);
        off.insert((0, 1), g);
        assert!(off.is_empty());
    }

    #[test]
    fn engine_clear_cache_resets_counters() {
        let engine = Engine::default();
        // Same request value both times: cache keys are per source
        // *instance*, so only identical handles can hit.
        let req = request(300, 2, 8, 5);
        let _ = engine.run(&req).unwrap();
        let _ = engine.run(&req).unwrap();
        let (hits, _) = engine.cache_counters();
        assert!(hits > 0, "second identical run must hit the cache");
        engine.clear_cache();
        assert_eq!(engine.cache_counters(), (0, 0));
    }

    #[test]
    fn access_totals_accumulate_across_requests() {
        let engine = Engine::default();
        let first = engine.run(&request(200, 2, 3, 4)).unwrap();
        let after_first = engine.access_totals();
        assert_eq!(after_first.sorted, first.stats.sorted);
        assert_eq!(after_first.random, first.stats.random);
        assert_eq!(after_first.worker_spawns, first.stats.worker_spawns);
        let second = engine.run(&request(250, 3, 4, 6)).unwrap();
        let after_second = engine.access_totals();
        assert_eq!(
            after_second.sorted,
            first.stats.sorted + second.stats.sorted
        );
        assert_eq!(
            after_second.random,
            first.stats.random + second.stats.random
        );
    }

    #[test]
    fn parallel_runs_charge_one_prefetch_spawn_per_stream() {
        let engine = Engine::default();
        let result = engine.run(&request(200, 3, 9, 5)).unwrap();
        assert_eq!(result.stats.worker_spawns, 3);
        let serial = Engine::new(EngineConfig::serial());
        let result = serial.run(&request(200, 3, 9, 5)).unwrap();
        assert_eq!(result.stats.worker_spawns, 0);
    }

    #[test]
    fn run_many_reuses_a_bounded_worker_pool() {
        // With the serial config no prefetch workers muddy the count:
        // total spawns must equal the pool size, not the batch size.
        let engine = Engine::new(EngineConfig::serial());
        let requests: Vec<TopKRequest> = (0..12).map(|i| request(120, 2, i as u64, 3)).collect();
        let results = engine.run_many(&requests);
        let spawns: u64 = results
            .iter()
            .map(|r| r.as_ref().map(|x| x.stats.worker_spawns).unwrap_or(0))
            .sum();
        let pool = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(requests.len()) as u64;
        assert_eq!(spawns, pool, "one charge per pool worker, not per request");
    }

    #[test]
    fn sharded_ta_through_the_engine_matches_serial() {
        for &(n, m, k) in &[(400usize, 2usize, 7usize), (301, 3, 12), (64, 2, 100)] {
            let reference = {
                let serial = Engine::new(EngineConfig::serial());
                serial
                    .run_algorithm(&ThresholdAlgorithm, &request(n, m, 77, k))
                    .unwrap()
            };
            for shards in [2usize, 3, 8] {
                let engine = Engine::new(sharded_config(shards));
                let got = engine
                    .run_algorithm(&ThresholdAlgorithm, &request(n, m, 77, k))
                    .unwrap();
                assert_eq!(
                    got.answers, reference.answers,
                    "n={n} m={m} k={k} p={shards}"
                );
                assert!(
                    got.stats.worker_spawns >= shards as u64,
                    "shard workers charged"
                );
            }
        }
    }

    #[test]
    fn shard_min_items_keeps_small_queries_serial() {
        let engine = Engine::new(EngineConfig {
            shards: 4,
            shard_min_items: 1000,
            ..EngineConfig::DEFAULT
        });
        // Universe 100 < 2 * 1000: the serial path runs (spawns are the
        // m prefetch workers, not shard workers).
        let result = engine
            .run_algorithm(&ThresholdAlgorithm, &request(100, 2, 5, 4))
            .unwrap();
        assert_eq!(result.stats.worker_spawns, 2);
    }

    #[test]
    fn sharded_path_rejects_invalid_requests_like_serial() {
        #[derive(Debug)]
        struct NotMonotone;
        impl fmdb_core::scoring::ScoringFunction for NotMonotone {
            fn name(&self) -> String {
                "not-monotone".into()
            }
            fn combine(&self, grades: &[Score]) -> Score {
                grades.first().copied().unwrap_or(Score::ZERO)
            }
            fn is_strict(&self) -> bool {
                false
            }
            fn is_monotone(&self) -> bool {
                false
            }
        }
        let engine = Engine::new(sharded_config(4));
        let bad = TopKQuery::compose()
            .sources(independent_uniform(50, 2, 1))
            .scoring(NotMonotone)
            .k(3)
            .request()
            .unwrap();
        assert!(matches!(
            engine.run_algorithm(&ThresholdAlgorithm, &bad),
            Err(EngineError::Algo(AlgoError::NonMonotoneScoring(_)))
        ));
    }

    /// A request-level shard policy turns sharding on for an engine
    /// whose own config never shards — and the answers still match the
    /// serial reference.
    #[test]
    fn policy_sharding_overrides_engine_config() {
        let engine = Engine::default();
        let query = request(600, 2, 21, 8).query().clone();
        let sharded = query
            .clone()
            .into_request(ExecPolicy::new().sharded_over(4));
        let serial = query.into_request(ExecPolicy::new().sharding(ShardPolicy::Serial));
        let a = engine.run_algorithm(&ThresholdAlgorithm, &sharded).unwrap();
        let b = engine.run_algorithm(&ThresholdAlgorithm, &serial).unwrap();
        assert_eq!(a.answers, b.answers);
        assert!(
            a.stats.worker_spawns > b.stats.worker_spawns,
            "shard policy spawned workers ({} vs {})",
            a.stats.worker_spawns,
            b.stats.worker_spawns
        );
    }

    /// `ShardPolicy::Serial` pins a request to the serial path even on
    /// an engine configured to shard.
    #[test]
    fn policy_serial_pins_request_on_sharded_engine() {
        let engine = Engine::new(EngineConfig {
            parallel: false,
            ..sharded_config(4)
        });
        let query = request(600, 2, 22, 8).query().clone();
        let serial = query.into_request(ExecPolicy::new().sharding(ShardPolicy::Serial));
        let result = engine.run_algorithm(&ThresholdAlgorithm, &serial).unwrap();
        assert_eq!(result.stats.worker_spawns, 0, "no shard workers");
        verify_top_k(
            &mut independent_uniform(600, 2, 22)
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect::<Vec<_>>(),
            &Min,
            &result.answers,
            8,
        )
        .unwrap();
    }

    /// `Engine::run` resolves the policy's algorithm: CA and the
    /// θ-approximations are reachable without naming an algorithm value.
    #[test]
    fn policy_algorithms_run_through_the_engine() {
        use crate::policy::Algo;
        let engine = Engine::default();
        let query = request(400, 2, 23, 10).query().clone();

        let ca = query.clone().into_request(
            ExecPolicy::new()
                .algo(Algo::Ca)
                .cost_model(CostModel::random_to_sorted_ratio(10.0).unwrap()),
        );
        let exact = engine.run(&ca).unwrap();
        let mut check = independent_uniform(400, 2, 23);
        let mut refs: Vec<&mut dyn GradedSource> = check
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        verify_top_k(&mut refs, &Min, &exact.answers, 10).unwrap();

        let approx = query.into_request(ExecPolicy::new().theta(0.1));
        let relaxed = engine.run(&approx).unwrap();
        assert_eq!(relaxed.answers.len(), 10);
        assert!(
            relaxed.stats.database_access_cost() <= exact.stats.database_access_cost() * 4,
            "θ-approximation stayed in the same cost regime"
        );
    }

    #[test]
    fn grade_cache_queue_stays_bounded_under_churn() {
        let mut cache = GradeCache::new(4);
        let g = Score::clamped(0.1);
        for i in 0..10_000u64 {
            cache.insert((0, i % 16), g);
            let _ = cache.get((0, i % 16));
        }
        assert!(cache.len() <= 4);
        assert!(
            cache.core.queue_len() <= 4 * 4 + 8,
            "lazy queue compacted (len {})",
            cache.core.queue_len()
        );
    }
}
