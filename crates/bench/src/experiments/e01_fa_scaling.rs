//! E1 — Theorems 4.1/4.2: A₀'s database access cost scales as
//! `Θ(N^((m−1)/m) · k^(1/m))` on independent lists, against the naive
//! algorithm's `m·N`.

use std::sync::Arc;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::naive::Naive;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, fit_exponent, int, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let min: SharedScoring = Arc::new(Min);
    let mut report = Report::new(
        "E1",
        "A0 cost scaling vs database size",
        "Thm 4.1/4.2: cost Θ(N^((m−1)/m)·k^(1/m)) for independent conjuncts; naive costs m·N",
    );
    let ns: Vec<usize> = if cfg.quick {
        vec![1 << 10, 1 << 12, 1 << 14]
    } else {
        vec![1 << 12, 1 << 14, 1 << 16, 1 << 18]
    };
    let ms = [2usize, 3, 4];
    let ks = [1usize, 10, 50];

    let mut exponents = Table::new(
        "fitted exponent of cost vs N (expect (m−1)/m)",
        &["m", "k", "fitted", "theory", "naive exp"],
    );
    let mut costs = Table::new(
        "database access cost (mean over seeds)",
        &["m", "k", "N", "A0 cost", "naive cost", "A0/naive"],
    );

    for &m in &ms {
        for &k in &ks {
            let mut fa_points = Vec::new();
            let mut naive_points = Vec::new();
            for &n in &ns {
                let fa = mean_cost(&FaginsAlgorithm, &min, k, cfg.seeds, |seed| {
                    independent_uniform(n, m, seed)
                });
                let naive = mean_cost(&Naive, &min, k, cfg.seeds, |seed| {
                    independent_uniform(n, m, seed)
                });
                let fc = fa.database_access_cost();
                let nc = naive.database_access_cost();
                fa_points.push((n as f64, fc as f64));
                naive_points.push((n as f64, nc as f64));
                costs.row(vec![
                    m.to_string(),
                    k.to_string(),
                    n.to_string(),
                    int(fc),
                    int(nc),
                    f3(fc as f64 / nc as f64),
                ]);
            }
            exponents.row(vec![
                m.to_string(),
                k.to_string(),
                f3(fit_exponent(&fa_points)),
                f3((m as f64 - 1.0) / m as f64),
                f3(fit_exponent(&naive_points)),
            ]);
        }
    }
    report.table(costs);
    report.table(exponents);
    report.note(
        "A0's fitted exponents should track (m−1)/m — ~0.5 for m=2, ~0.67 for m=3, ~0.75 for m=4 — \
         while the naive exponent is 1.0 by construction.",
    );
    report
}
