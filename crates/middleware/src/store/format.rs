//! On-disk format of the paged column store: page layout, checksums,
//! and the crash-safe one-shot writer.
//!
//! A version-2 store file is a sequence of fixed-size pages:
//!
//! ```text
//! page 0                      header (magic, version, geometry, label)
//! page 1                      stats  (persisted equi-depth histogram)
//! pages 2 .. 2+D              directory (first oid of each random page)
//! pages 2+D .. 2+D+B          page bounds ((min, max) grade per data page)
//! pages 2+D+B .. 2+D+B+S      sorted run   (grade-desc, oid-asc entries)
//! pages 2+D+B+S .. 2+D+B+S+R  random table (oid-asc entries)
//! ```
//!
//! The bounds section holds one `(min_grade, max_grade)` f64-bit pair
//! per data page — sorted-run pages first, then random-table pages —
//! and powers the zone-map pruning layer: a drain holding a live
//! threshold stops at the first sorted page whose persisted `max`
//! falls below it, and bounded probes skip pages entirely outside the
//! requested grade range. Version-1 files (no bounds section,
//! `B = 0`) still open fine — pruning is simply disabled.
//!
//! Every page carries a CRC32 over its post-checksum bytes, so a torn
//! or bit-flipped page surfaces as [`StoreError::ChecksumMismatch`],
//! never as silent bad grades. Entries are 16 bytes — little-endian
//! `oid: u64` followed by the grade's `f64` bit pattern — so grades
//! round-trip bit-exactly ([`fmdb_core::score::Score::value`] →
//! `to_bits` → `from_bits`).
//!
//! The writer is one-shot and crash-safe: everything is written to
//! `<path>.tmp`, fsynced, renamed over `<path>`, and the parent
//! directory fsynced — a crash at any point leaves either the old
//! file or the new one, never a half-written store.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::stats::{GradeHistogram, DEFAULT_HISTOGRAM_BINS};

use crate::source::Oid;

/// Magic bytes opening every store file (version baked into the name).
pub const MAGIC: [u8; 8] = *b"FMDBPGS1";

/// Format version written into the header (2: per-page grade bounds).
pub const VERSION: u32 = 2;

/// The previous format version: no bounds section. Still readable —
/// opening a v1 store disables page pruning instead of erroring.
pub const VERSION_1: u32 = 1;

/// Smallest supported page size: the header (with a bounded label)
/// and a useful number of entries must fit on one page.
pub const MIN_PAGE_SIZE: usize = 256;

/// Default page size: one filesystem block.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Bytes of per-page overhead: `u32` checksum + `u32` entry count.
pub const PAGE_HEADER_BYTES: usize = 8;

/// Bytes per `(oid, grade)` entry.
pub const ENTRY_BYTES: usize = 16;

/// Longest label a store can persist.
pub const MAX_LABEL_BYTES: usize = 128;

/// Fixed version-1 header fields before the variable-length label.
const HEADER_FIXED_BYTES_V1: usize = 60;

/// Fixed version-2 header fields: v1's plus the `u32` bounds-page
/// count at offset 60.
const HEADER_FIXED_BYTES: usize = 64;

/// Everything that can go wrong opening, reading, or building a store.
///
/// This is the typed-error surface the lint regime's `no-panic` rule
/// demands: a truncated file, a corrupt page, or an undecodable grade
/// is a value the caller handles, never a panic.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the store magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file is shorter than its header claims it should be.
    Truncated {
        /// Bytes the header's geometry requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A page's stored CRC32 does not match its contents.
    ChecksumMismatch {
        /// The page index within the file.
        page: u64,
    },
    /// A header field is internally inconsistent.
    InvalidHeader(&'static str),
    /// A persisted grade's bit pattern decodes outside `[0, 1]`.
    InvalidGrade {
        /// The page the bad entry was read from.
        page: u64,
    },
    /// The label passed to the builder exceeds [`MAX_LABEL_BYTES`].
    LabelTooLong(usize),
    /// The requested page size is below [`MIN_PAGE_SIZE`].
    PageSizeTooSmall(usize),
    /// The persisted stats page does not reassemble into a histogram.
    InvalidStats,
    /// An open-time knob is self-contradictory (e.g. `Some(0)` frames —
    /// use `None` to disable a feature explicitly).
    InvalidOptions(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a paged store (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            StoreError::Truncated { expected, actual } => {
                write!(f, "store truncated: need {expected} bytes, found {actual}")
            }
            StoreError::ChecksumMismatch { page } => {
                write!(f, "checksum mismatch on page {page}")
            }
            StoreError::InvalidHeader(what) => write!(f, "invalid store header: {what}"),
            StoreError::InvalidGrade { page } => {
                write!(f, "grade outside [0,1] on page {page}")
            }
            StoreError::LabelTooLong(n) => {
                write!(
                    f,
                    "label of {n} bytes exceeds the {MAX_LABEL_BYTES}-byte cap"
                )
            }
            StoreError::PageSizeTooSmall(n) => {
                write!(f, "page size {n} below the {MIN_PAGE_SIZE}-byte minimum")
            }
            StoreError::InvalidStats => write!(f, "persisted stats page is not a histogram"),
            StoreError::InvalidOptions(what) => {
                write!(f, "invalid store options: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected), table-free bitwise form —
/// pages are checksummed once at build and once per cold read, so the
/// simple loop is plenty.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Reads a little-endian `u32` at `off`. Caller guarantees bounds
/// (pages are fixed-size buffers the reader allocated itself).
pub(crate) fn read_u32(buf: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    // lint:allow(unchecked-arith): off is a within-page field offset
    // (< PAGE_SIZE), so off + 4 cannot wrap; the slice op
    // bounds-checks against the page buffer regardless.
    b.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(b)
}

/// Reads a little-endian `u64` at `off` (same bounds contract).
pub(crate) fn read_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    // lint:allow(unchecked-arith): same within-page contract — off + 8
    // cannot wrap and the slice op bounds-checks.
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

fn write_u32(buf: &mut [u8], off: usize, v: u32) {
    // lint:allow(unchecked-arith): within-page field offset, cannot
    // wrap; slice op bounds-checks.
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn write_u64(buf: &mut [u8], off: usize, v: u64) {
    // lint:allow(unchecked-arith): within-page field offset, cannot
    // wrap; slice op bounds-checks.
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Stamps the page's CRC32 (over bytes 4..) into its first word.
fn seal_page(page: &mut [u8]) {
    let crc = crc32(&page[4..]);
    write_u32(page, 0, crc);
}

/// Verifies a page's stored CRC32.
pub(crate) fn verify_page(page: &[u8], index: u64) -> Result<(), StoreError> {
    if page.len() < PAGE_HEADER_BYTES {
        return Err(StoreError::InvalidHeader("page shorter than its header"));
    }
    if read_u32(page, 0) != crc32(&page[4..]) {
        return Err(StoreError::ChecksumMismatch { page: index });
    }
    Ok(())
}

/// The decoded header page: file geometry and identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Format version the file was written with ([`VERSION_1`] or
    /// [`VERSION`]).
    pub version: u32,
    /// Fixed page size in bytes.
    pub page_size: usize,
    /// Number of `(oid, grade)` entries the store holds.
    pub n: u64,
    /// Entries per data page: `(page_size - 8) / 16`.
    pub entries_per_page: usize,
    /// Directory pages (one `u64` first-oid per random page).
    pub dir_pages: u64,
    /// Pages of the grade-descending sorted run.
    pub sorted_pages: u64,
    /// Pages of the oid-ascending random table.
    pub random_pages: u64,
    /// Pages of the per-data-page grade-bounds section (0 for a
    /// version-1 file: pruning disabled).
    pub bounds_pages: u64,
    /// Bucket count of the persisted histogram (0 for an empty store).
    pub hist_bins: u32,
    /// Universe the persisted histogram describes.
    pub hist_universe: u64,
    /// The source label ([`crate::source::SourceInfo::label`]).
    pub label: String,
}

impl Header {
    /// First page of the directory section.
    pub fn dir_start(&self) -> u64 {
        2
    }

    /// First page of the grade-bounds section (empty for version 1).
    pub fn bounds_start(&self) -> u64 {
        2 + self.dir_pages
    }

    /// First page of the sorted run.
    pub fn sorted_start(&self) -> u64 {
        self.bounds_start() + self.bounds_pages
    }

    /// First page of the random table.
    pub fn random_start(&self) -> u64 {
        self.sorted_start() + self.sorted_pages
    }

    /// Total pages in the file.
    pub fn total_pages(&self) -> u64 {
        self.random_start() + self.random_pages
    }

    /// Total bytes the file must hold.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }
}

/// Build-time knobs for [`build_store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildConfig {
    /// Page size in bytes (min [`MIN_PAGE_SIZE`]).
    pub page_size: usize,
    /// Bins of the histogram persisted on the stats page. Clamped so
    /// the bounds fit one page.
    pub histogram_bins: usize,
}

impl BuildConfig {
    /// 4 KiB pages, default-resolution histogram.
    pub const DEFAULT: BuildConfig = BuildConfig {
        page_size: DEFAULT_PAGE_SIZE,
        histogram_bins: DEFAULT_HISTOGRAM_BINS,
    };

    /// The default with a different page size.
    pub fn with_page_size(page_size: usize) -> BuildConfig {
        BuildConfig {
            page_size,
            ..BuildConfig::DEFAULT
        }
    }
}

impl Default for BuildConfig {
    fn default() -> BuildConfig {
        BuildConfig::DEFAULT
    }
}

/// The canonical tmp-file path the writer stages into.
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Builds a store file at `path` from `(oid, grade)` pairs, crash-safely.
///
/// The pairs are normalized exactly as [`crate::source::VecSource::new`]
/// normalizes them — duplicate oids keep the *last* grade, the sorted
/// run is ordered by descending grade then ascending oid — so a
/// [`super::PagedSource`] over the result is bit-identical to a
/// `VecSource` over the same pairs. The whole file is written to
/// `<path>.tmp`, fsynced, atomically renamed over `path`, and the
/// parent directory fsynced.
pub fn build_store(
    path: &Path,
    label: &str,
    pairs: Vec<(Oid, Score)>,
    cfg: &BuildConfig,
) -> Result<(), StoreError> {
    build_store_versioned(path, label, pairs, cfg, VERSION)
}

/// [`build_store`] at an explicit format version — version 1 writes no
/// bounds section. Kept for the backward-compatibility tests; new
/// stores are always current-version.
pub(crate) fn build_store_versioned(
    path: &Path,
    label: &str,
    pairs: Vec<(Oid, Score)>,
    cfg: &BuildConfig,
    version: u32,
) -> Result<(), StoreError> {
    if cfg.page_size < MIN_PAGE_SIZE {
        return Err(StoreError::PageSizeTooSmall(cfg.page_size));
    }
    if label.len() > MAX_LABEL_BYTES {
        return Err(StoreError::LabelTooLong(label.len()));
    }
    let page_size = cfg.page_size;
    let entries_per_page = (page_size - PAGE_HEADER_BYTES) / ENTRY_BYTES;
    let dir_entries_per_page = (page_size - PAGE_HEADER_BYTES) / 8;

    // Normalize exactly like VecSource::new: dedupe keep-last, then
    // sort by (grade desc, oid asc).
    let mut by_oid: std::collections::HashMap<Oid, Score> =
        std::collections::HashMap::with_capacity(pairs.len());
    for (oid, g) in pairs {
        by_oid.insert(oid, g);
    }
    let mut sorted: Vec<ScoredObject<Oid>> = by_oid
        .iter()
        .map(|(&oid, &grade)| ScoredObject::new(oid, grade))
        .collect();
    sorted.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
    let mut by_id: Vec<ScoredObject<Oid>> = sorted.clone();
    by_id.sort_by_key(|so| so.id);

    let n = sorted.len() as u64;
    let pages_for = |count: u64| count.div_ceil(entries_per_page as u64);
    let sorted_pages = pages_for(n);
    let random_pages = pages_for(n);
    let dir_pages = random_pages.div_ceil(dir_entries_per_page as u64);
    // One (min, max) pair per data page; pairs are entry-sized, so the
    // bounds section packs at the data-page entry rate. Version 1 has
    // no bounds section at all.
    let bounds_pages = if version == VERSION_1 {
        0
    } else {
        (sorted_pages + random_pages).div_ceil(entries_per_page as u64)
    };

    // The histogram must fit the single stats page.
    let max_bounds = (page_size - PAGE_HEADER_BYTES) / 8;
    let bins = cfg
        .histogram_bins
        .max(1)
        .min(max_bounds.saturating_sub(1).max(1));
    let histogram = GradeHistogram::from_sorted_by(sorted.len(), bins, |i| {
        sorted.get(i).map(|s| s.grade).unwrap_or(Score::ZERO)
    });

    let header = Header {
        version,
        page_size,
        n,
        entries_per_page,
        dir_pages,
        sorted_pages,
        random_pages,
        bounds_pages,
        hist_bins: histogram.bins() as u32,
        hist_universe: histogram.universe() as u64,
        label: label.to_owned(),
    };

    let staging = staging_path(path);
    let result = write_all_pages(&staging, &header, &sorted, &by_id, &histogram);
    if result.is_err() {
        let _ = std::fs::remove_file(&staging);
        return result;
    }
    std::fs::rename(&staging, path)?;
    // fsync the parent directory so the rename itself is durable.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            File::open(parent)?.sync_all()?;
        }
    }
    Ok(())
}

/// Writes every page of the store into `staging` and fsyncs it.
fn write_all_pages(
    staging: &Path,
    header: &Header,
    sorted: &[ScoredObject<Oid>],
    by_id: &[ScoredObject<Oid>],
    histogram: &GradeHistogram,
) -> Result<(), StoreError> {
    let page_size = header.page_size;
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(staging)?;
    let mut page = vec![0u8; page_size];

    // Page 0: header.
    write_header(&mut page, header)?;
    file.write_all(&page)?;

    // Page 1: stats — bound count then each bound's f64 bit pattern.
    page.iter_mut().for_each(|b| *b = 0);
    let bounds = histogram.bounds();
    write_u32(&mut page, 4, bounds.len() as u32);
    for (i, &b) in bounds.iter().enumerate() {
        write_u64(&mut page, PAGE_HEADER_BYTES + i * 8, b.to_bits());
    }
    seal_page(&mut page);
    file.write_all(&page)?;

    // Directory pages: first oid of each random page.
    let epp = header.entries_per_page;
    let dir_entries_per_page = (page_size - PAGE_HEADER_BYTES) / 8;
    let first_oids: Vec<Oid> = by_id.chunks(epp).map(|c| c[0].id).collect();
    for chunk in first_oids.chunks(dir_entries_per_page.max(1)) {
        page.iter_mut().for_each(|b| *b = 0);
        write_u32(&mut page, 4, chunk.len() as u32);
        for (i, &oid) in chunk.iter().enumerate() {
            write_u64(&mut page, PAGE_HEADER_BYTES + i * 8, oid);
        }
        seal_page(&mut page);
        file.write_all(&page)?;
    }
    // An empty store still owns its directory page count (0), nothing
    // to pad.

    // Bounds pages: one (min, max) grade pair per data page, sorted
    // run first then random table, entry-sized pairs. Version-1 files
    // carry no bounds section.
    if header.version != VERSION_1 {
        let mut page_bounds: Vec<(Score, Score)> = Vec::new();
        for section in [sorted, by_id] {
            for chunk in section.chunks(epp.max(1)) {
                let mut lo = Score::ONE;
                let mut hi = Score::ZERO;
                for so in chunk {
                    lo = lo.min(so.grade);
                    hi = hi.max(so.grade);
                }
                page_bounds.push((lo, hi));
            }
        }
        for chunk in page_bounds.chunks(epp.max(1)) {
            page.iter_mut().for_each(|b| *b = 0);
            write_u32(&mut page, 4, chunk.len() as u32);
            for (i, &(lo, hi)) in chunk.iter().enumerate() {
                let off = PAGE_HEADER_BYTES + i * ENTRY_BYTES;
                write_u64(&mut page, off, lo.value().to_bits());
                write_u64(&mut page, off + 8, hi.value().to_bits());
            }
            seal_page(&mut page);
            file.write_all(&page)?;
        }
    }

    // Sorted run, then random table: identical entry encoding.
    for section in [sorted, by_id] {
        for chunk in section.chunks(epp.max(1)) {
            page.iter_mut().for_each(|b| *b = 0);
            write_u32(&mut page, 4, chunk.len() as u32);
            for (i, so) in chunk.iter().enumerate() {
                let off = PAGE_HEADER_BYTES + i * ENTRY_BYTES;
                write_u64(&mut page, off, so.id);
                write_u64(&mut page, off + 8, so.grade.value().to_bits());
            }
            seal_page(&mut page);
            file.write_all(&page)?;
        }
    }

    file.sync_all()?;
    Ok(())
}

/// Encodes the header page (checksummed like every other page) in the
/// layout `header.version` dictates — the version-1 writer survives
/// for the backward-compatibility tests.
fn write_header(page: &mut [u8], header: &Header) -> Result<(), StoreError> {
    page.iter_mut().for_each(|b| *b = 0);
    let label = header.label.as_bytes();
    let label_off = if header.version == VERSION_1 {
        HEADER_FIXED_BYTES_V1
    } else {
        HEADER_FIXED_BYTES
    };
    if label_off + label.len() > page.len() {
        return Err(StoreError::LabelTooLong(label.len()));
    }
    page[4..12].copy_from_slice(&MAGIC);
    write_u32(page, 12, header.version);
    write_u32(page, 16, header.page_size as u32);
    write_u64(page, 20, header.n);
    write_u32(page, 28, header.entries_per_page as u32);
    write_u32(page, 32, header.dir_pages as u32);
    write_u32(page, 36, header.sorted_pages as u32);
    write_u32(page, 40, header.random_pages as u32);
    write_u32(page, 44, header.hist_bins);
    write_u64(page, 48, header.hist_universe);
    write_u32(page, 56, label.len() as u32);
    if header.version != VERSION_1 {
        write_u32(page, 60, header.bounds_pages as u32);
    }
    page[label_off..label_off + label.len()].copy_from_slice(label);
    seal_page(page);
    Ok(())
}

/// Decodes and validates a header page read from disk.
pub(crate) fn decode_header(page: &[u8]) -> Result<Header, StoreError> {
    if page.len() < HEADER_FIXED_BYTES {
        return Err(StoreError::InvalidHeader("header page too short"));
    }
    if page[4..12] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    // Magic first, checksum second: a non-store file should say "not a
    // store", not "corrupt store".
    verify_page(page, 0)?;
    let version = read_u32(page, 12);
    if version != VERSION_1 && version != VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let page_size = read_u32(page, 16) as usize;
    if page_size != page.len() || page_size < MIN_PAGE_SIZE {
        return Err(StoreError::InvalidHeader("page size disagrees with file"));
    }
    let n = read_u64(page, 20);
    let entries_per_page = read_u32(page, 28) as usize;
    if entries_per_page != (page_size - PAGE_HEADER_BYTES) / ENTRY_BYTES || entries_per_page == 0 {
        return Err(StoreError::InvalidHeader("entries-per-page mismatch"));
    }
    let dir_pages = read_u32(page, 32) as u64;
    let sorted_pages = read_u32(page, 36) as u64;
    let random_pages = read_u32(page, 40) as u64;
    let expected_pages = n.div_ceil(entries_per_page as u64);
    if sorted_pages != expected_pages || random_pages != expected_pages {
        return Err(StoreError::InvalidHeader("page counts disagree with n"));
    }
    let hist_bins = read_u32(page, 44);
    let hist_universe = read_u64(page, 48);
    let label_len = read_u32(page, 56) as usize;
    let (bounds_pages, label_off) = if version == VERSION_1 {
        (0u64, HEADER_FIXED_BYTES_V1)
    } else {
        let bounds_pages = read_u32(page, 60) as u64;
        let expected_bounds =
            (sorted_pages + random_pages).div_ceil(entries_per_page as u64);
        if bounds_pages != expected_bounds {
            return Err(StoreError::InvalidHeader(
                "bounds page count disagrees with data pages",
            ));
        }
        (bounds_pages, HEADER_FIXED_BYTES)
    };
    if label_len > MAX_LABEL_BYTES || label_off + label_len > page_size {
        return Err(StoreError::InvalidHeader("label length out of range"));
    }
    let label = std::str::from_utf8(&page[label_off..label_off + label_len])
        .map_err(|_| StoreError::InvalidHeader("label is not UTF-8"))?
        .to_owned();
    Ok(Header {
        version,
        page_size,
        n,
        entries_per_page,
        dir_pages,
        sorted_pages,
        random_pages,
        bounds_pages,
        hist_bins,
        hist_universe,
        label,
    })
}

/// Decodes one `(oid, grade)` entry at slot `i` of a data page.
pub(crate) fn decode_entry(
    page: &[u8],
    i: usize,
    page_index: u64,
) -> Result<ScoredObject<Oid>, StoreError> {
    let off = PAGE_HEADER_BYTES + i * ENTRY_BYTES;
    let oid = read_u64(page, off);
    let bits = read_u64(page, off + 8);
    let grade = Score::new(f64::from_bits(bits))
        .map_err(|_| StoreError::InvalidGrade { page: page_index })?;
    Ok(ScoredObject::new(oid, grade))
}

/// The entry count a data page declares (bounded by what fits).
pub(crate) fn page_entry_count(page: &[u8], entries_per_page: usize) -> usize {
    (read_u32(page, 4) as usize).min(entries_per_page)
}

/// Decodes one `(min, max)` grade pair at slot `i` of a bounds page,
/// validating both grades and their ordering — corrupt bounds surface
/// as typed errors, never as silently wrong pruning.
pub(crate) fn decode_bound(
    page: &[u8],
    i: usize,
    page_index: u64,
) -> Result<(Score, Score), StoreError> {
    // i < entries_per_page so the offset stays within the page; the
    // reads bounds-check regardless.
    let off = PAGE_HEADER_BYTES + i * ENTRY_BYTES;
    let lo = Score::new(f64::from_bits(read_u64(page, off)))
        .map_err(|_| StoreError::InvalidGrade { page: page_index })?;
    let hi = Score::new(f64::from_bits(read_u64(page, off + 8)))
        .map_err(|_| StoreError::InvalidGrade { page: page_index })?;
    if lo > hi {
        return Err(StoreError::InvalidHeader("page bound min above max"));
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_roundtrips() {
        let header = Header {
            version: VERSION,
            page_size: 4096,
            n: 1000,
            entries_per_page: (4096 - PAGE_HEADER_BYTES) / ENTRY_BYTES,
            dir_pages: 1,
            sorted_pages: 4,
            random_pages: 4,
            bounds_pages: 1,
            hist_bins: 16,
            hist_universe: 1000,
            label: "color".into(),
        };
        let mut page = vec![0u8; 4096];
        write_header(&mut page, &header).unwrap();
        assert_eq!(decode_header(&page).unwrap(), header);
    }

    #[test]
    fn version_1_header_roundtrips_with_pruning_disabled() {
        let header = Header {
            version: VERSION_1,
            page_size: 4096,
            n: 1000,
            entries_per_page: (4096 - PAGE_HEADER_BYTES) / ENTRY_BYTES,
            dir_pages: 1,
            sorted_pages: 4,
            random_pages: 4,
            bounds_pages: 0,
            hist_bins: 16,
            hist_universe: 1000,
            label: "color".into(),
        };
        let mut page = vec![0u8; 4096];
        write_header(&mut page, &header).unwrap();
        let decoded = decode_header(&page).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded.bounds_pages, 0, "v1 has no bounds section");
        assert_eq!(decoded.sorted_start(), 3, "v1 sorted run follows the directory");
    }

    #[test]
    fn bounds_pairs_roundtrip_and_reject_corruption() {
        let mut page = vec![0u8; 512];
        write_u32(&mut page, 4, 2);
        write_u64(&mut page, PAGE_HEADER_BYTES, 0.25f64.to_bits());
        write_u64(&mut page, PAGE_HEADER_BYTES + 8, 0.75f64.to_bits());
        write_u64(&mut page, PAGE_HEADER_BYTES + 16, 0.9f64.to_bits());
        write_u64(&mut page, PAGE_HEADER_BYTES + 24, 0.1f64.to_bits());
        let (lo, hi) = decode_bound(&page, 0, 3).unwrap();
        assert_eq!(lo.value().to_bits(), 0.25f64.to_bits());
        assert_eq!(hi.value().to_bits(), 0.75f64.to_bits());
        assert!(matches!(
            decode_bound(&page, 1, 3),
            Err(StoreError::InvalidHeader(_))
        ));
        write_u64(&mut page, PAGE_HEADER_BYTES, 2.0f64.to_bits());
        assert!(matches!(
            decode_bound(&page, 0, 3),
            Err(StoreError::InvalidGrade { page: 3 })
        ));
    }

    #[test]
    fn header_rejects_bad_magic_and_bad_checksum() {
        let header = Header {
            version: VERSION,
            page_size: 4096,
            n: 0,
            entries_per_page: (4096 - PAGE_HEADER_BYTES) / ENTRY_BYTES,
            dir_pages: 0,
            sorted_pages: 0,
            random_pages: 0,
            bounds_pages: 0,
            hist_bins: 0,
            hist_universe: 0,
            label: String::new(),
        };
        let mut page = vec![0u8; 4096];
        write_header(&mut page, &header).unwrap();

        let mut bad_magic = page.clone();
        bad_magic[4] = b'X';
        assert!(matches!(
            decode_header(&bad_magic),
            Err(StoreError::BadMagic)
        ));

        let mut bad_sum = page.clone();
        bad_sum[20] ^= 0xFF; // flip a payload bit, keep the magic
        assert!(matches!(
            decode_header(&bad_sum),
            Err(StoreError::ChecksumMismatch { page: 0 })
        ));

        page[12] = 99; // unsupported version (re-seal so checksum passes)
        seal_page(&mut page);
        assert!(matches!(
            decode_header(&page),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn sealed_pages_verify_and_detect_flips() {
        let mut page = vec![0u8; 512];
        page[100] = 42;
        seal_page(&mut page);
        assert!(verify_page(&page, 7).is_ok());
        page[101] ^= 1;
        assert!(matches!(
            verify_page(&page, 7),
            Err(StoreError::ChecksumMismatch { page: 7 })
        ));
    }
}
