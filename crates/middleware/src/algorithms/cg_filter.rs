//! Filter-condition simulation of A₀, after Chaudhuri–Gravano \[CG96\]
//! (§4.1: "Chaudhuri and Gravano consider ways to simulate algorithm A₀
//! by using 'filter conditions', which might say, for example, that the
//! color score is at least .2").
//!
//! Many repositories cannot stream indefinitely but can answer *filter
//! queries*: "all objects with grade ≥ τ". We simulate such a query
//! over a [`GradedSource`] by sorted-accessing until the stream drops
//! below τ (each streamed object counts as an access, including the one
//! that reveals the stream fell below τ).
//!
//! Strategy: guess a threshold τ; fetch every conjunct's τ-filter
//! result; objects in *all* filter results have fully-known grades, so
//! their overall grades are exact. If at least `k` of them score ≥ τ we
//! are done (no other object can reach τ — see below); otherwise lower
//! τ and restart, paying the re-execution. Experiment E12 measures how
//! the τ schedule trades restarts against over-fetching.
//!
//! Soundness requires `combine(x₁…x_m) ≤ min(x₁…x_m)` — true for every
//! t-norm (`t(x,y) ≤ t(x,1) = x`), false for means. Then an object
//! missing from some τ-filter has a conjunct grade < τ, hence an overall
//! grade < τ, and cannot displace the `k` found answers. The
//! constructor probes this property and refuses means and co-norms.

use std::collections::HashMap;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::{finalize, validate, AlgoError, TopKAlgorithm, TopKResult};
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// Filter-condition top-k evaluation with a geometric τ schedule.
#[derive(Debug, Clone, Copy)]
pub struct CgFilter {
    /// First threshold tried, in `(0, 1)`.
    pub initial_tau: f64,
    /// Multiplier applied to τ after an unsuccessful round, in `(0, 1)`.
    pub decay: f64,
}

impl Default for CgFilter {
    fn default() -> Self {
        CgFilter {
            initial_tau: 0.5,
            decay: 0.5,
        }
    }
}

/// Result of one [`CgFilter`] run with the restart count exposed.
#[derive(Debug, Clone, PartialEq)]
pub struct CgRun {
    /// The top-k result (stats include every restarted round).
    pub result: TopKResult,
    /// Number of rounds executed (1 = first τ sufficed).
    pub rounds: u32,
    /// The final threshold that produced the answer.
    pub final_tau: f64,
}

/// Probes that `combine` is bounded by min on a sample grid.
fn bounded_by_min(scoring: &dyn ScoringFunction, arity: usize) -> bool {
    let samples = [0.0, 0.2, 0.5, 0.8, 1.0];
    let mut args = vec![Score::ZERO; arity];
    // Axis sweeps: one coordinate low, the rest high — where means
    // visibly exceed min.
    for &lo in &samples {
        for &hi in &samples {
            for pos in 0..arity {
                for (i, a) in args.iter_mut().enumerate() {
                    *a = if i == pos {
                        Score::clamped(lo)
                    } else {
                        Score::clamped(hi)
                    };
                }
                let min = args.iter().copied().fold(Score::ONE, Score::min);
                if scoring.combine(&args).value() > min.value() + 1e-9 {
                    return false;
                }
            }
        }
    }
    true
}

impl CgFilter {
    /// Creates a filter strategy. Returns `None` unless
    /// `0 < initial_tau < 1` and `0 < decay < 1`.
    pub fn new(initial_tau: f64, decay: f64) -> Option<CgFilter> {
        ((0.0..1.0).contains(&initial_tau)
            && initial_tau > 0.0
            && (0.0..1.0).contains(&decay)
            && decay > 0.0)
            .then_some(CgFilter { initial_tau, decay })
    }

    /// Runs the filter strategy, reporting restart diagnostics.
    pub fn run(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<CgRun, AlgoError> {
        validate(sources, scoring, k)?;
        if !bounded_by_min(scoring, sources.len()) {
            return Err(AlgoError::UnsupportedScoring {
                algorithm: "cg-filter",
                requirement: "combine bounded by min (a t-norm)",
                scoring: scoring.name(),
            });
        }
        let m = sources.len();
        let mut stats = AccessStats::ZERO;
        let mut tau = self.initial_tau;
        let mut rounds = 0u32;

        loop {
            rounds += 1;
            // One filter round: stream each list down to grade < τ.
            let mut slots: HashMap<Oid, Vec<Option<Score>>> = HashMap::new();
            let mut all_exhausted = true;
            for (i, source) in sources.iter_mut().enumerate() {
                source.rewind();
                let mut drained = true;
                while let Some(so) = source.sorted_next() {
                    stats.sorted += 1;
                    if so.grade.value() < tau {
                        drained = false;
                        break;
                    }
                    slots.entry(so.id).or_insert_with(|| vec![None; m])[i] = Some(so.grade);
                }
                all_exhausted &= drained;
            }

            // Candidates present in every filter result have exact
            // grades. Once every list is fully drained, a missing slot
            // definitively means "not in that list" — grade 0.
            let mut answers: Vec<ScoredObject<Oid>> = Vec::new();
            let mut buf = Vec::with_capacity(m);
            for (&oid, s) in &slots {
                if all_exhausted {
                    buf.clear();
                    buf.extend(s.iter().map(|&g| g.unwrap_or(Score::ZERO)));
                    answers.push(ScoredObject::new(oid, scoring.combine(&buf)));
                } else if s.iter().all(Option::is_some) {
                    buf.clear();
                    buf.extend(s.iter().copied().flatten());
                    answers.push(ScoredObject::new(oid, scoring.combine(&buf)));
                }
            }
            let enough = answers.iter().filter(|a| a.grade.value() >= tau).count() >= k;

            if enough || all_exhausted {
                return Ok(CgRun {
                    result: finalize(answers, k, stats),
                    rounds,
                    final_tau: tau,
                });
            }
            tau *= self.decay;
            // Grades of 0 can never pass a positive filter; once τ
            // decays below any meaningful grade, drop it to 0 so the
            // next round drains the lists completely and terminates.
            if tau < 1e-12 {
                tau = 0.0;
            }
        }
    }
}

impl TopKAlgorithm for CgFilter {
    fn name(&self) -> &'static str {
        "cg-filter"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        self.run(sources, scoring, k).map(|r| r.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::Naive;
    use crate::source::VecSource;
    use fmdb_core::scoring::means::ArithmeticMean;
    use fmdb_core::scoring::tnorms::{Min, Product};

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn pseudo_random_sources(n: u64, seeds: &[u64]) -> Vec<VecSource> {
        seeds
            .iter()
            .map(|&seed| {
                let grades: Vec<Score> = (0..n)
                    .map(|i| s(((i.wrapping_mul(seed)) % 10_007) as f64 / 10_007.0))
                    .collect();
                VecSource::from_dense(format!("src{seed}"), &grades)
            })
            .collect()
    }

    fn run_algo(
        algo: &dyn TopKAlgorithm,
        sources: &mut [VecSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> TopKResult {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        algo.top_k(&mut refs, scoring, k).unwrap()
    }

    fn grades_of(r: &TopKResult) -> Vec<Score> {
        r.answers.iter().map(|a| a.grade).collect()
    }

    #[test]
    fn grades_match_naive_under_min_and_product() {
        let scorings: Vec<Box<dyn ScoringFunction>> = vec![Box::new(Min), Box::new(Product)];
        for scoring in &scorings {
            for k in [1, 5, 12] {
                let mut a = pseudo_random_sources(300, &[7919, 104729]);
                let cg = run_algo(&CgFilter::default(), &mut a, scoring.as_ref(), k);
                let mut b = pseudo_random_sources(300, &[7919, 104729]);
                let naive = run_algo(&Naive, &mut b, scoring.as_ref(), k);
                assert_eq!(
                    grades_of(&cg),
                    grades_of(&naive),
                    "{} k={k}",
                    scoring.name()
                );
            }
        }
    }

    #[test]
    fn rejects_means() {
        let mut a = pseudo_random_sources(50, &[7919, 104729]);
        let mut refs: Vec<&mut dyn GradedSource> =
            a.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        assert!(matches!(
            CgFilter::default().top_k(&mut refs, &ArithmeticMean, 3),
            Err(AlgoError::UnsupportedScoring { .. })
        ));
    }

    #[test]
    fn low_initial_tau_avoids_restarts_high_tau_restarts() {
        let mut a = pseudo_random_sources(300, &[7919, 104729]);
        let mut refs: Vec<&mut dyn GradedSource> =
            a.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let greedy = CgFilter::new(0.95, 0.5).unwrap();
        let run_hi = greedy.run(&mut refs, &Min, 20).unwrap();
        assert!(run_hi.rounds > 1, "τ=0.95 should not satisfy k=20 at once");

        let mut b = pseudo_random_sources(300, &[7919, 104729]);
        let mut refs_b: Vec<&mut dyn GradedSource> =
            b.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let lax = CgFilter::new(0.05, 0.5).unwrap();
        let run_lo = lax.run(&mut refs_b, &Min, 20).unwrap();
        assert_eq!(run_lo.rounds, 1);
    }

    #[test]
    fn terminates_on_all_zero_grades() {
        let grades = vec![Score::ZERO; 10];
        let mut a = VecSource::from_dense("a", &grades);
        let mut b = VecSource::from_dense("b", &grades);
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let run = CgFilter::default().run(&mut refs, &Min, 3).unwrap();
        assert_eq!(run.result.answers.len(), 3);
        assert!(run.result.answers.iter().all(|a| a.grade == Score::ZERO));
    }

    #[test]
    fn constructor_validates() {
        assert!(CgFilter::new(0.0, 0.5).is_none());
        assert!(CgFilter::new(1.0, 0.5).is_none());
        assert!(CgFilter::new(0.5, 0.0).is_none());
        assert!(CgFilter::new(0.5, 1.0).is_none());
        assert!(CgFilter::new(0.5, 0.5).is_some());
    }
}
