//! Shared helpers for the experiment binaries.
//!
//! Every experiment routes its top-k runs through one process-wide
//! [`Engine`] behind the unified [`TopKRequest`] API: sorted access is
//! batched and prefetched on worker threads, random access flows
//! through the shared grade cache. The engine is bit-identical to the
//! scalar algorithms — same answers, same charged `sorted`/`random`
//! counts — so the reproduced numbers are unaffected by the plumbing.

use std::sync::{Arc, OnceLock};

use fmdb_middleware::algorithms::{TopKAlgorithm, TopKResult};
use fmdb_middleware::engine::Engine;
use fmdb_middleware::policy::ExecPolicy;
use fmdb_middleware::request::{SharedScoring, TopKQuery};
use fmdb_middleware::source::VecSource;
use fmdb_middleware::stats::AccessStats;

/// Global run configuration for experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunCfg {
    /// Quick mode shrinks every sweep so the full suite runs in
    /// seconds (used by integration tests and smoke runs).
    pub quick: bool,
    /// Number of random seeds to average over.
    pub seeds: u64,
}

impl RunCfg {
    /// Reads configuration from `FMDB_QUICK` / `--quick`.
    pub fn from_env() -> RunCfg {
        let quick =
            std::env::var_os("FMDB_QUICK").is_some() || std::env::args().any(|a| a == "--quick");
        RunCfg {
            quick,
            seeds: if quick { 2 } else { 5 },
        }
    }

    /// A quick configuration (for tests).
    pub fn quick() -> RunCfg {
        RunCfg {
            quick: true,
            seeds: 2,
        }
    }

    /// Picks between a full and a quick value.
    pub fn pick<T: Copy>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// The experiments' shared execution engine (default configuration:
/// batched sorted access, one prefetch worker per stream, LRU grade
/// cache).
pub fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::default)
}

/// Runs `algo` through the shared [`engine`] over copies of `sources`.
///
/// # Panics
/// Panics if the algorithm rejects the query — experiments only pass
/// valid (monotone, non-empty) configurations.
pub fn run_algo(
    algo: &dyn TopKAlgorithm,
    sources: &mut [VecSource],
    scoring: &SharedScoring,
    k: usize,
) -> TopKResult {
    let request = TopKQuery::compose()
        .sources(sources.iter().cloned())
        .shared_scoring(Arc::clone(scoring))
        .k(k)
        .request()
        .unwrap_or_else(|e| panic!("{} rejected request: {e}", algo.name()));
    engine()
        .run_algorithm(algo, &request)
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()))
}

/// Runs a request under an explicit [`ExecPolicy`] through the shared
/// [`engine`] — the policy resolves the algorithm (CA, θ-approximate
/// TA, …), the charged cost model, and per-request sharding.
///
/// # Panics
/// Panics if the policy or query is rejected — experiments only pass
/// valid configurations.
pub fn run_policy(
    policy: ExecPolicy,
    sources: &mut [VecSource],
    scoring: &SharedScoring,
    k: usize,
) -> TopKResult {
    let request = TopKQuery::compose()
        .sources(sources.iter().cloned())
        .shared_scoring(Arc::clone(scoring))
        .k(k)
        .policy(policy)
        .request()
        .unwrap_or_else(|e| panic!("policy rejected request: {e}"));
    engine()
        .run(&request)
        .unwrap_or_else(|e| panic!("policy run failed: {e}"))
}

/// Averages the access stats of `algo` across seeds, generating fresh
/// sources per seed via `make_sources`.
pub fn mean_cost(
    algo: &dyn TopKAlgorithm,
    scoring: &SharedScoring,
    k: usize,
    seeds: u64,
    mut make_sources: impl FnMut(u64) -> Vec<VecSource>,
) -> AccessStats {
    let mut total = AccessStats::ZERO;
    for seed in 0..seeds {
        let mut sources = make_sources(seed);
        total += run_algo(algo, &mut sources, scoring, k).stats;
    }
    AccessStats::new(total.sorted / seeds, total.random / seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmdb_core::scoring::tnorms::Min;
    use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
    use fmdb_middleware::workload::independent_uniform;

    #[test]
    fn mean_cost_averages_over_seeds() {
        let min: SharedScoring = Arc::new(Min);
        let stats = mean_cost(&FaginsAlgorithm, &min, 3, 3, |seed| {
            independent_uniform(200, 2, seed)
        });
        assert!(stats.database_access_cost() > 0);
        assert!(stats.database_access_cost() < 400);
    }

    #[test]
    fn engine_routing_matches_direct_scalar_run() {
        use fmdb_core::scoring::ScoringFunction;
        use fmdb_middleware::source::GradedSource;
        let min: SharedScoring = Arc::new(Min);
        let mut sources = independent_uniform(300, 3, 17);
        let engine_result = run_algo(&FaginsAlgorithm, &mut sources, &min, 7);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let scalar = FaginsAlgorithm
            .top_k(&mut refs, &Min as &dyn ScoringFunction, 7)
            .unwrap();
        assert_eq!(engine_result.answers, scalar.answers);
        assert_eq!(engine_result.stats.sorted, scalar.stats.sorted);
        assert_eq!(engine_result.stats.random, scalar.stats.random);
    }

    #[test]
    fn policy_routing_matches_forced_algorithms() {
        use fmdb_middleware::policy::Algo;
        let min: SharedScoring = Arc::new(Min);
        let mut sources = independent_uniform(250, 2, 9);
        let policy_run = run_policy(ExecPolicy::new().algo(Algo::Ta), &mut sources, &min, 6);
        let forced = run_algo(
            &fmdb_middleware::algorithms::ta::ThresholdAlgorithm,
            &mut sources,
            &min,
            6,
        );
        assert_eq!(policy_run.answers, forced.answers);
        assert_eq!(policy_run.stats.sorted, forced.stats.sorted);
        assert_eq!(policy_run.stats.random, forced.stats.random);
    }

    #[test]
    fn cfg_pick() {
        let q = RunCfg::quick();
        assert_eq!(q.pick(100, 10), 10);
        let f = RunCfg {
            quick: false,
            seeds: 5,
        };
        assert_eq!(f.pick(100, 10), 100);
    }
}
