//! Brute-force reference evaluation and top-k validity checking.
//!
//! The paper defines a correct answer to a top-k query as *any* set of
//! `k` objects (with grades) such that every returned object ties or
//! beats every object left out; ties may be broken arbitrarily.
//! [`verify_top_k`] checks exactly that definition, so algorithms with
//! different (but legal) tie-breaking all pass. It drains the sources
//! completely — it is an oracle for tests, not an algorithm.

use std::collections::HashMap;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::source::{GradedSource, Oid};

/// Every object's exact overall grade, computed by full scans.
///
/// Rewinds and fully drains each source.
pub fn all_grades(
    sources: &mut [&mut dyn GradedSource],
    scoring: &dyn ScoringFunction,
) -> HashMap<Oid, Score> {
    let m = sources.len();
    let mut slots: HashMap<Oid, Vec<Score>> = HashMap::new();
    for (i, source) in sources.iter_mut().enumerate() {
        source.rewind();
        while let Some(so) = source.sorted_next() {
            slots.entry(so.id).or_insert_with(|| vec![Score::ZERO; m])[i] = so.grade;
        }
        source.rewind();
    }
    slots
        .into_iter()
        .map(|(oid, gs)| (oid, scoring.combine(&gs)))
        .collect()
}

/// Why a candidate answer failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum TopKViolation {
    /// An answer reported a grade different from the true grade.
    WrongGrade {
        /// The object.
        oid: Oid,
        /// What the algorithm reported.
        reported: Score,
        /// The true grade.
        actual: Score,
    },
    /// Fewer answers than `min(k, N)` were returned.
    TooFewAnswers {
        /// How many came back.
        got: usize,
        /// How many were required.
        expected: usize,
    },
    /// The same object appeared twice.
    Duplicate(Oid),
    /// Some object outside the answer set beats an answer.
    NotTopK {
        /// The overlooked object.
        better: Oid,
        /// Its grade.
        better_grade: Score,
        /// The weakest returned grade it beats.
        weakest_returned: Score,
    },
}

impl std::fmt::Display for TopKViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopKViolation::WrongGrade {
                oid,
                reported,
                actual,
            } => write!(f, "object {oid}: reported grade {reported}, actual {actual}"),
            TopKViolation::TooFewAnswers { got, expected } => {
                write!(f, "got {got} answers, expected {expected}")
            }
            TopKViolation::Duplicate(oid) => write!(f, "object {oid} returned twice"),
            TopKViolation::NotTopK {
                better,
                better_grade,
                weakest_returned,
            } => write!(
                f,
                "object {better} (grade {better_grade}) beats weakest returned grade {weakest_returned}"
            ),
        }
    }
}

/// Verifies that `answers` is a valid top-`k` result for the query.
///
/// Drains the sources (they are rewound before and after).
pub fn verify_top_k(
    sources: &mut [&mut dyn GradedSource],
    scoring: &dyn ScoringFunction,
    answers: &[ScoredObject<Oid>],
    k: usize,
) -> Result<(), TopKViolation> {
    let truth = all_grades(sources, scoring);
    let expected = k.min(truth.len());
    if answers.len() < expected {
        return Err(TopKViolation::TooFewAnswers {
            got: answers.len(),
            expected,
        });
    }
    let mut seen = std::collections::HashSet::new();
    for a in answers {
        if !seen.insert(a.id) {
            return Err(TopKViolation::Duplicate(a.id));
        }
        let actual = truth.get(&a.id).copied().unwrap_or(Score::ZERO);
        if !actual.approx_eq(a.grade, 1e-9) {
            return Err(TopKViolation::WrongGrade {
                oid: a.id,
                reported: a.grade,
                actual,
            });
        }
    }
    let weakest = answers.iter().map(|a| a.grade).min().unwrap_or(Score::ONE);
    for (&oid, &grade) in &truth {
        if !seen.contains(&oid) && grade.value() > weakest.value() + 1e-9 {
            return Err(TopKViolation::NotTopK {
                better: oid,
                better_grade: grade,
                weakest_returned: weakest,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use fmdb_core::scoring::tnorms::Min;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn sources() -> (VecSource, VecSource) {
        (
            VecSource::from_dense("a", &[s(0.9), s(0.2), s(0.6)]),
            VecSource::from_dense("b", &[s(0.1), s(0.8), s(0.7)]),
        )
    }

    #[test]
    fn all_grades_combines_correctly() {
        let (mut a, mut b) = sources();
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let g = all_grades(&mut refs, &Min);
        assert_eq!(g[&0], s(0.1));
        assert_eq!(g[&1], s(0.2));
        assert_eq!(g[&2], s(0.6));
    }

    #[test]
    fn accepts_a_correct_answer() {
        let (mut a, mut b) = sources();
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let ans = vec![ScoredObject::new(2, s(0.6)), ScoredObject::new(1, s(0.2))];
        assert_eq!(verify_top_k(&mut refs, &Min, &ans, 2), Ok(()));
    }

    #[test]
    fn rejects_wrong_grade() {
        let (mut a, mut b) = sources();
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let ans = vec![ScoredObject::new(2, s(0.9))];
        assert!(matches!(
            verify_top_k(&mut refs, &Min, &ans, 1),
            Err(TopKViolation::WrongGrade { oid: 2, .. })
        ));
    }

    #[test]
    fn rejects_non_top_k() {
        let (mut a, mut b) = sources();
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let ans = vec![ScoredObject::new(1, s(0.2))];
        assert!(matches!(
            verify_top_k(&mut refs, &Min, &ans, 1),
            Err(TopKViolation::NotTopK { better: 2, .. })
        ));
    }

    #[test]
    fn rejects_duplicates_and_short_answers() {
        let (mut a, mut b) = sources();
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let dup = vec![ScoredObject::new(2, s(0.6)), ScoredObject::new(2, s(0.6))];
        assert!(matches!(
            verify_top_k(&mut refs, &Min, &dup, 2),
            Err(TopKViolation::Duplicate(2))
        ));
        let short = vec![ScoredObject::new(2, s(0.6))];
        assert!(matches!(
            verify_top_k(&mut refs, &Min, &short, 2),
            Err(TopKViolation::TooFewAnswers {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn violation_display() {
        let v = TopKViolation::Duplicate(3);
        assert!(v.to_string().contains('3'));
    }
}
