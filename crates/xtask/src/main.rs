//! `xtask` — workspace automation, home of the **fmdb-lint**
//! static-analysis driver.
//!
//! Run as `cargo xtask lint` (the alias lives in
//! `.cargo/config.toml`). The linter walks every first-party `.rs`
//! file, lexes it with a hand-rolled lexer (the build environment is
//! offline, so no `syn`), and enforces the workspace's invariant
//! rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`todo!` in library code |
//! | `no-float-eq` | no `==`/`!=` on floating-point expressions |
//! | `bounded-channels` | no unbounded `mpsc::channel()` in middleware |
//! | `crate-hygiene` | crate roots carry the baseline inner attributes |
//! | `no-deprecated` | no calls to workspace-deprecated items |
//!
//! `cargo xtask analyze` is the deeper **fmdb-analyze** pass: it
//! parses every file into an item tree (hand-rolled recursive-descent
//! parser over the same lexer), links call sites to definitions
//! through a workspace-wide symbol table, and enforces the
//! concurrency/invariant rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `atomic-ordering` | every `Ordering::*` matches a whitelisted idiom or is justified |
//! | `lock-order` | the workspace lock-acquisition graph is acyclic |
//! | `detached-thread` | every `thread::spawn` keeps its handle or is justified |
//! | `ignored-result` | discarding a workspace `Result` needs a written reason |
//! | `unchecked-arith` | hot-kernel integer `+ - *` is saturating/checked or justified |
//! | `parse-error` | the analyzer modelled every first-party construct |
//!
//! `cargo xtask suppressions` audits every `lint:allow(...)` /
//! `ordering(...)` marker and fails on stale ones (markers that no
//! longer excuse any finding).
//!
//! Findings print rustc-style (`error[rule]: … --> path:line:col`), or
//! as a JSON array with `--format json`. Exit status for every
//! subcommand: `0` clean, `1` violations found, `2` usage or I/O
//! error.
//!
//! `cargo xtask check-bench [PATH]` additionally gates the
//! `BENCH_engine.json` perf trajectory: every experiment E1–E23 must be
//! present with numeric measurements, E18's cold/warm persistence
//! split must be coherent, E22's instance-optimality ratios must be
//! ≥ 1, and E23's pruning speedups/skip rates must be sane (see
//! `bench_check`).

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

mod analyze;
mod bench_check;
mod diagnostics;
mod lexer;
mod parser;
mod rules;
mod suppressions;
mod symbols;
mod workspace;

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--format text|json] [--root PATH]
      Run the fmdb-lint invariant rules over the workspace.
      --format json   emit findings as a JSON array (default: text)
      --root PATH     lint PATH instead of the enclosing workspace
  analyze [--format text|json] [--root PATH]
      Run the fmdb-analyze concurrency/invariant rules: parse every
      file, link the symbol table, enforce atomic-ordering,
      lock-order, detached-thread, ignored-result, unchecked-arith.
  suppressions [--format text|json] [--root PATH]
      List every lint:allow(...)/ordering(...) marker with its
      justification; exit 1 if any marker is stale (excuses nothing).
  check-bench [PATH]
      Validate the BENCH_engine.json perf trajectory (default path:
      BENCH_engine.json in the workspace root): experiments E1-E23
      present, measurements numeric, E18 cold/warm split coherent,
      E22 optimality ratios >= 1, E23 pruning speedups positive and
      skip rates in [0, 1].

exit status: 0 clean, 1 violations, 2 usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("suppressions") => run_suppressions(&args[1..]),
        Some("check-bench") => check_bench(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Output format for diagnostics.
#[derive(Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// Parses the `--format`/`--root` flags shared by the diagnostic
/// subcommands, and collects the target workspace. `Err` carries the
/// exit code (always 2: usage or I/O).
fn diag_setup(args: &[String]) -> Result<(Format, workspace::Workspace), ExitCode> {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "error: --format takes `text` or `json`, got {}",
                        other.unwrap_or("nothing")
                    );
                    return Err(ExitCode::from(2));
                }
            },
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --root takes a path");
                    return Err(ExitCode::from(2));
                }
            },
            other => {
                eprintln!("error: unknown flag `{other}`\n\n{USAGE}");
                return Err(ExitCode::from(2));
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match workspace::collect(&root) {
        Ok(ws) => Ok((format, ws)),
        Err(e) => {
            eprintln!("error: {e}");
            Err(ExitCode::from(2))
        }
    }
}

/// Prints diagnostics in the requested format with a `name:` summary
/// line, returning exit 0/1.
fn report(
    name: &str,
    rule_names: &[&str],
    format: &Format,
    ws: &workspace::Workspace,
    diags: &[diagnostics::Diagnostic],
) -> ExitCode {
    match format {
        Format::Json => println!("{}", diagnostics::to_json(diags)),
        Format::Text => {
            for d in diags {
                println!("{d}\n");
            }
            if diags.is_empty() {
                println!(
                    "{name}: {} files clean ({})",
                    ws.files.len(),
                    rule_names.join(", ")
                );
            } else {
                println!("{name}: {} violation(s)", diags.len());
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn lint(args: &[String]) -> ExitCode {
    let (format, ws) = match diag_setup(args) {
        Ok(ok) => ok,
        Err(code) => return code,
    };
    let diags = rules::run_all(&ws);
    report("fmdb-lint", workspace::RULES, &format, &ws, &diags)
}

fn run_analyze(args: &[String]) -> ExitCode {
    let (format, ws) = match diag_setup(args) {
        Ok(ok) => ok,
        Err(code) => return code,
    };
    let diags = analyze::run_all(&ws);
    report(
        "fmdb-analyze",
        workspace::ANALYZE_RULES,
        &format,
        &ws,
        &diags,
    )
}

fn run_suppressions(args: &[String]) -> ExitCode {
    let (format, ws) = match diag_setup(args) {
        Ok(ok) => ok,
        Err(code) => return code,
    };
    let reports = suppressions::audit(&ws);
    match format {
        Format::Json => println!("{}", suppressions::render_json(&reports)),
        Format::Text => print!("{}", suppressions::render(&reports)),
    }
    if reports.iter().any(|r| r.stale) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn check_bench(args: &[String]) -> ExitCode {
    let path = match args {
        [] => workspace_root().join("BENCH_engine.json"),
        [p] => PathBuf::from(p),
        _ => {
            eprintln!("error: check-bench takes at most one path\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match bench_check::check(&content) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {}: {message}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`crates/xtask` → repo root). `--root` overrides for tests.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or(manifest)
}
