//! Per-instance optimality accounting (FLN instance optimality).
//!
//! Fagin–Lotem–Naor prove TA is *instance optimal*: on every database
//! instance its cost is within a constant factor of the best possible
//! cost for that instance. The proof compares against a **certificate
//! lower bound** — before any correct deterministic algorithm may halt,
//! the accesses it has performed must *prove* its answer set is a legal
//! (θ-approximate) top-k. This module computes, per instance, the
//! cheapest such certificate over all equal-depth sorted prefixes, so
//! experiments can report *empirical optimality ratios*
//! `charged(algorithm) / certificate(instance)` that are ≥ 1 by
//! construction and close to 1 exactly when the algorithm is close to
//! instance optimal (experiment E22).
//!
//! The certificate at sorted depth `d` (per stream, clamped to stream
//! length):
//!
//! * **Sorted units** `S(d) = Σᵢ min(d, nᵢ)` — every stream must be
//!   read to depth `d` to know the threshold `τ(d)` (combined bottom
//!   grades).
//! * **Feasibility** — depth `d` can certify an answer iff (a) no
//!   unseen object can beat the slack: `τ(d) ≤ (1+θ)·y_k`, where `y_k`
//!   is the true k-th grade, and (b) at least `k` seen objects have
//!   `(1+θ)·grade ≥ y_k` (there exists a legal answer set among the
//!   seen).
//! * **Probes** `P(d) = max(0, C(d) − k)` where `C(d)` counts seen
//!   objects whose depth-`d` upper bound exceeds `(1+θ)·y_k`: all but
//!   the `k` delivered answers of these contenders must be separated
//!   from the answer set, and sorted access alone (at this depth) does
//!   not do it. The `k` answers themselves may be delivered on lower
//!   bounds (NRA's set-delivery semantics), so they are never charged.
//!
//! The oracle cost under a [`CostModel`] is
//! `min over feasible d of c_S·S(d) + c_R·P(d)`. The curves depend on
//! `θ` but **not** on the cost model, so one sweep over depths prices
//! every cost ratio (E22 reuses one oracle across the whole E5 grid).

use std::collections::HashMap;

use fmdb_core::score::Score;
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::approx::{grade_certifies, upper_excluded, validate_theta};
use crate::algorithms::AlgoError;
use crate::source::{GradedSource, Oid};
use crate::stats::CostModel;

/// Sentinel for "this object never appears in that stream".
const ABSENT: usize = usize::MAX;

/// The certificate at one equal sorted depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthCurve {
    /// Sorted depth `d` (per stream, clamped to stream length).
    pub depth: usize,
    /// `S(d)`: total sorted accesses to reach this depth.
    pub sorted: u64,
    /// `P(d)`: random accesses the certificate charges at this depth
    /// (meaningful only when `feasible`).
    pub probes: u64,
    /// Whether a correct (θ-approximate) answer is certifiable here.
    pub feasible: bool,
}

/// The per-instance certificate lower bound for one query.
///
/// Build once per (instance, k, θ); price under any number of
/// [`CostModel`]s with [`OptimalityOracle::cheapest`].
#[derive(Debug, Clone)]
pub struct OptimalityOracle {
    theta: f64,
    kth_grade: Score,
    curves: Vec<DepthCurve>,
}

impl OptimalityOracle {
    /// Computes the certificate curves for the instance behind
    /// `sources` (drained and rewound; nothing is charged).
    ///
    /// `theta` is the approximation slack the certified answer is
    /// allowed (`0` for exact top-k). Costs `O(N²·m)` time — this is a
    /// measurement harness, not an algorithm.
    pub fn build(
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
        theta: f64,
    ) -> Result<OptimalityOracle, AlgoError> {
        if sources.is_empty() {
            return Err(AlgoError::NoSources);
        }
        if k == 0 {
            return Err(AlgoError::ZeroK);
        }
        if !scoring.is_monotone() {
            return Err(AlgoError::NonMonotoneScoring(scoring.name()));
        }
        validate_theta(theta)?;

        let m = sources.len();
        let mut lists: Vec<Vec<(Oid, Score)>> = Vec::with_capacity(m);
        for source in sources.iter_mut() {
            source.rewind();
            let mut list = Vec::new();
            while let Some(so) = source.sorted_next() {
                list.push((so.id, so.grade));
            }
            source.rewind();
            lists.push(list);
        }
        let n = lists.iter().map(Vec::len).max().unwrap_or(0);

        // Per-object slot grades and per-stream positions.
        let mut slots: HashMap<Oid, Vec<Score>> = HashMap::new();
        let mut positions: HashMap<Oid, Vec<usize>> = HashMap::new();
        for (i, list) in lists.iter().enumerate() {
            for (pos, &(oid, grade)) in list.iter().enumerate() {
                slots.entry(oid).or_insert_with(|| vec![Score::ZERO; m])[i] = grade;
                positions.entry(oid).or_insert_with(|| vec![ABSENT; m])[i] = pos;
            }
        }
        let universe = slots.len();

        // True combined grades, descending; y_k = the true k-th grade.
        let mut truth: HashMap<Oid, Score> = HashMap::with_capacity(universe);
        let mut ranked: Vec<Score> = Vec::with_capacity(universe);
        for (&oid, object_slots) in &slots {
            let g = scoring.combine(object_slots);
            truth.insert(oid, g);
            ranked.push(g);
        }
        ranked.sort_by(|a, b| b.cmp(a));
        let kth_grade = ranked
            .get(k.saturating_sub(1).min(ranked.len().saturating_sub(1)))
            .copied()
            .unwrap_or(Score::ZERO);
        let need = k.min(universe);

        let mut curves = Vec::with_capacity(n);
        let mut seen: Vec<Oid> = Vec::with_capacity(universe);
        let mut is_seen: HashMap<Oid, bool> = HashMap::with_capacity(universe);
        let mut certified_seen = 0usize;
        let mut sorted_units: u64 = 0;
        let mut slot_buf = vec![Score::ZERO; m];

        for d in 1..=n {
            // Advance each stream one row (streams shorter than d are
            // exhausted and contribute no further sorted units).
            for list in &lists {
                if let Some(&(oid, _)) = list.get(d - 1) {
                    sorted_units += 1;
                    let entry = is_seen.entry(oid).or_insert(false);
                    if !*entry {
                        *entry = true;
                        seen.push(oid);
                        if grade_certifies(
                            truth.get(&oid).copied().unwrap_or(Score::ZERO),
                            kth_grade,
                            theta,
                        ) {
                            certified_seen += 1;
                        }
                    }
                }
            }

            // τ(d): combine each stream's bottom grade at this depth.
            for (i, list) in lists.iter().enumerate() {
                slot_buf[i] = match list.get(d.min(list.len()).saturating_sub(1)) {
                    Some(&(_, grade)) => grade,
                    None => Score::ZERO,
                };
            }
            let tau = scoring.combine(&slot_buf);

            // C(d): seen contenders not excluded by their upper bound.
            let mut contenders = 0u64;
            for &oid in &seen {
                let (object_slots, object_positions) = match (slots.get(&oid), positions.get(&oid))
                {
                    (Some(s), Some(p)) => (s, p),
                    _ => continue,
                };
                for i in 0..m {
                    slot_buf[i] = if object_positions[i] < d {
                        object_slots[i]
                    } else {
                        match lists[i].get(d.min(lists[i].len()).saturating_sub(1)) {
                            Some(&(_, grade)) => grade,
                            None => Score::ZERO,
                        }
                    };
                }
                let upper = scoring.combine(&slot_buf);
                if !upper_excluded(upper, kth_grade, theta) {
                    contenders += 1;
                }
            }

            let feasible = certified_seen >= need && upper_excluded(tau, kth_grade, theta);
            let probes = contenders.saturating_sub(need as u64);
            curves.push(DepthCurve {
                depth: d,
                sorted: sorted_units,
                probes,
                feasible,
            });
        }

        Ok(OptimalityOracle {
            theta,
            kth_grade,
            curves,
        })
    }

    /// The cheapest feasible certificate under `model`.
    ///
    /// Returns `0.0` for an empty universe. Full depth is always
    /// feasible (every object seen, τ at the combined minima), so a
    /// non-empty instance always has a finite cost.
    pub fn cheapest(&self, model: &CostModel) -> f64 {
        let mut best = f64::INFINITY;
        for curve in &self.curves {
            if !curve.feasible {
                continue;
            }
            let cost =
                curve.sorted as f64 * model.sorted_unit + curve.probes as f64 * model.random_unit;
            if cost < best {
                best = cost;
            }
        }
        if best.is_finite() {
            best
        } else {
            // Defensive: no feasible depth recorded (empty universe).
            0.0
        }
    }

    /// The empirical optimality ratio `charged / cheapest`, ≥ 1 for
    /// every correct algorithm priced under the same `model` and θ.
    ///
    /// Degenerate instances with a zero-cost certificate report `1.0`.
    pub fn ratio(&self, charged: f64, model: &CostModel) -> f64 {
        let bound = self.cheapest(model);
        if bound > 0.0 {
            charged / bound
        } else {
            1.0
        }
    }

    /// The slack this oracle certifies against.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The instance's true k-th grade `y_k`.
    pub fn kth_grade(&self) -> Score {
        self.kth_grade
    }

    /// The per-depth certificate curves, ascending depth.
    pub fn curves(&self) -> &[DepthCurve] {
        &self.curves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::approx::{ApproxNra, ApproxTa};
    use crate::algorithms::ca::CombinedAlgorithm;
    use crate::algorithms::fa::FaginsAlgorithm;
    use crate::algorithms::nra::NraLowerBound;
    use crate::algorithms::ta::ThresholdAlgorithm;
    use crate::algorithms::TopKAlgorithm;
    use crate::workload::independent_uniform;
    use fmdb_core::scoring::tnorms::Min;

    fn refs(sources: &mut [crate::source::VecSource]) -> Vec<&mut dyn GradedSource> {
        sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect()
    }

    fn models() -> Vec<CostModel> {
        [0.1, 1.0, 10.0, 100.0]
            .iter()
            .filter_map(|&r| CostModel::random_to_sorted_ratio(r))
            .collect()
    }

    #[test]
    fn oracle_lower_bounds_every_algorithm() {
        for seed in [3_u64, 17, 99] {
            let mut sources = independent_uniform(200, 2, seed);
            let k = 10;
            let oracle = OptimalityOracle::build(&mut refs(&mut sources), &Min, k, 0.0).unwrap();
            let algorithms: Vec<Box<dyn TopKAlgorithm>> = vec![
                Box::new(ThresholdAlgorithm),
                Box::new(NraLowerBound),
                Box::new(FaginsAlgorithm),
                Box::new(CombinedAlgorithm::new(4, 0.0)),
            ];
            for algorithm in &algorithms {
                let result = algorithm.top_k(&mut refs(&mut sources), &Min, k).unwrap();
                for model in models() {
                    let charged = result.stats.charged(&model);
                    let bound = oracle.cheapest(&model);
                    assert!(
                        charged + 1e-9 >= bound,
                        "{} charged {charged} under {model:?}, below certificate {bound}",
                        algorithm.name()
                    );
                    assert!(oracle.ratio(charged, &model) >= 1.0 - 1e-9);
                }
            }
        }
    }

    #[test]
    fn oracle_lower_bounds_approximate_runs() {
        for theta in [0.01, 0.1, 0.5] {
            let mut sources = independent_uniform(200, 2, 7);
            let k = 10;
            let oracle = OptimalityOracle::build(&mut refs(&mut sources), &Min, k, theta).unwrap();
            let algorithms: Vec<Box<dyn TopKAlgorithm>> = vec![
                Box::new(ApproxTa::new(theta)),
                Box::new(ApproxNra::new(theta)),
                Box::new(CombinedAlgorithm::new(4, theta)),
            ];
            for algorithm in &algorithms {
                let result = algorithm.top_k(&mut refs(&mut sources), &Min, k).unwrap();
                for model in models() {
                    let charged = result.stats.charged(&model);
                    assert!(
                        charged + 1e-9 >= oracle.cheapest(&model),
                        "{} (θ={theta}) beat the certificate under {model:?}",
                        algorithm.name()
                    );
                }
            }
        }
    }

    #[test]
    fn slack_never_raises_the_certificate() {
        let mut sources = independent_uniform(150, 3, 11);
        let exact = OptimalityOracle::build(&mut refs(&mut sources), &Min, 5, 0.0).unwrap();
        let relaxed = OptimalityOracle::build(&mut refs(&mut sources), &Min, 5, 0.5).unwrap();
        for model in models() {
            assert!(relaxed.cheapest(&model) <= exact.cheapest(&model) + 1e-9);
        }
    }

    #[test]
    fn full_depth_is_always_feasible_and_curves_ascend() {
        let mut sources = independent_uniform(64, 2, 5);
        let oracle = OptimalityOracle::build(&mut refs(&mut sources), &Min, 4, 0.0).unwrap();
        let curves = oracle.curves();
        assert_eq!(curves.len(), 64);
        assert!(curves.last().unwrap().feasible);
        for pair in curves.windows(2) {
            assert!(pair[0].sorted < pair[1].sorted);
            assert!(pair[0].depth + 1 == pair[1].depth);
        }
        assert!(oracle.kth_grade() > Score::ZERO);
    }

    #[test]
    fn build_validates_arguments() {
        let mut none: Vec<&mut dyn GradedSource> = Vec::new();
        assert_eq!(
            OptimalityOracle::build(&mut none, &Min, 3, 0.0).unwrap_err(),
            AlgoError::NoSources
        );
        let mut sources = independent_uniform(10, 2, 1);
        assert_eq!(
            OptimalityOracle::build(&mut refs(&mut sources), &Min, 0, 0.0).unwrap_err(),
            AlgoError::ZeroK
        );
        assert!(OptimalityOracle::build(&mut refs(&mut sources), &Min, 3, -0.5).is_err());
    }
}
