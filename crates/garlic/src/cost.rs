//! Cost-based plan selection (§4.2).
//!
//! "Finally, there are cost modeling issues. In order to use an
//! optimizer, we need to understand the cost of applying various
//! operators over various data in various repositories." This module
//! supplies that understanding for the four strategies the executor
//! implements, using the paper's own cost formulas:
//!
//! | plan | estimated accesses |
//! |------|--------------------|
//! | crisp-filter | `Σ_crisp (|S_c|+1)` sorted + `|S|·#fuzzy` random |
//! | A₀ | `c·N^((m−1)/m)·k^(1/m)` (Theorem 4.1), split evenly between sorted and random |
//! | max-merge | `m·k` sorted |
//! | full scan | `m·N` sorted |
//!
//! The A₀ constant `c` is calibratable — [`CostEstimator::calibrate_fa`]
//! fits it by probing a synthetic instance, mirroring how a real
//! optimizer would maintain statistics. Estimates are priced through a
//! [`CostModel`], so the §6 request for "a more realistic cost measure"
//! is honored: re-pricing random accesses changes which plan wins.

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::planner::{estimate_cost, CombinerKind, PhysicalPlan, PlanQuery};
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::stats::CostModel;
use fmdb_middleware::workload::independent_uniform;

use crate::planner::PlanKind;

/// Statistics a plan estimate needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanContext {
    /// Universe size.
    pub n: usize,
    /// Number of conjuncts.
    pub m: usize,
    /// Answers requested.
    pub k: usize,
    /// Per-crisp-conjunct match counts, with the running intersection
    /// bound in `crisp_survivors` (None when no crisp conjunct).
    pub crisp_survivors: Option<u64>,
    /// Number of crisp conjuncts.
    pub crisp_count: usize,
}

impl PlanContext {
    /// Context for a fully fuzzy query.
    pub fn fuzzy(n: usize, m: usize, k: usize) -> PlanContext {
        PlanContext {
            n,
            m,
            k,
            crisp_survivors: None,
            crisp_count: 0,
        }
    }
}

/// Estimates the (priced) database access cost of each plan kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimator {
    /// The constant in A₀'s `c·N^((m−1)/m)·k^(1/m)` law. The default
    /// 4.0 sits in the band measured by experiment E3 on independent
    /// uniform grades.
    pub fa_constant: f64,
    /// Access pricing.
    pub cost_model: CostModel,
}

impl Default for CostEstimator {
    fn default() -> Self {
        CostEstimator {
            fa_constant: 4.0,
            cost_model: CostModel::UNIFORM,
        }
    }
}

impl CostEstimator {
    /// Calibrates the A₀ constant by probing a synthetic independent
    /// instance of size `probe_n` (the statistics-gathering step a
    /// production optimizer would run offline).
    pub fn calibrate_fa(&mut self, probe_n: usize, m: usize, k: usize, seed: u64) {
        let probe_n = probe_n.max(64);
        let k = k.max(1).min(probe_n);
        let m = m.max(2);
        let mut sources = independent_uniform(probe_n, m, seed);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let result = FaginsAlgorithm
            .top_k(&mut refs, &Min, k)
            // lint:allow(no-panic): calibration probe over two synthetic in-memory sources; a failure is a bug in the probe itself
            .expect("probe configuration is valid");
        let law =
            (probe_n as f64).powf((m as f64 - 1.0) / m as f64) * (k as f64).powf(1.0 / m as f64);
        self.fa_constant = result.stats.database_access_cost() as f64 / law;
    }

    /// The estimated priced cost of running `kind` under `ctx`, or
    /// `None` when the plan does not apply (crisp filter without a
    /// crisp conjunct).
    ///
    /// The arithmetic lives in [`fmdb_middleware::planner::estimate_cost`]
    /// — this is a thin adapter that translates garlic's [`PlanContext`]
    /// into the unified planner's query description, so both entry
    /// points price plans through one formula set.
    pub fn estimate(&self, kind: PlanKind, ctx: &PlanContext) -> Option<f64> {
        let mut query = PlanQuery::fuzzy(ctx.n, ctx.m, ctx.k).fa_constant(self.fa_constant);
        let plan = match kind {
            PlanKind::CrispFilter => {
                query = query.crisp(ctx.crisp_count, ctx.crisp_survivors?);
                PhysicalPlan::CrispFilter
            }
            PlanKind::FaginA0 => PhysicalPlan::Fa,
            PlanKind::Ta => PhysicalPlan::Ta,
            PlanKind::Ca { h } => PhysicalPlan::Ca { h },
            PlanKind::MaxMerge => {
                query = query.combiner(CombinerKind::MaxLike);
                PhysicalPlan::MaxMerge
            }
            PlanKind::FullScan => PhysicalPlan::FullScan,
        };
        estimate_cost(plan, &query, None, &self.cost_model, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_reproduce_the_paper_formulas() {
        let e = CostEstimator::default();
        let ctx = PlanContext::fuzzy(10_000, 2, 10);
        assert_eq!(e.estimate(PlanKind::FullScan, &ctx), Some(20_000.0));
        assert_eq!(e.estimate(PlanKind::MaxMerge, &ctx), Some(20.0));
        let fa = e.estimate(PlanKind::FaginA0, &ctx).unwrap();
        assert!((fa - 4.0 * (10_000.0f64 * 10.0).sqrt()).abs() < 1e-9);
        // No crisp conjunct → no crisp-filter estimate.
        assert_eq!(e.estimate(PlanKind::CrispFilter, &ctx), None);
    }

    #[test]
    fn crisp_filter_estimate_tracks_selectivity() {
        let e = CostEstimator::default();
        let mut ctx = PlanContext::fuzzy(10_000, 2, 10);
        ctx.crisp_survivors = Some(50);
        ctx.crisp_count = 1;
        // (50+1) sorted + 50·1 random = 101.
        assert_eq!(e.estimate(PlanKind::CrispFilter, &ctx), Some(101.0));
        ctx.crisp_survivors = Some(5_000);
        assert_eq!(e.estimate(PlanKind::CrispFilter, &ctx), Some(10_001.0));
    }

    #[test]
    fn pricing_changes_the_winner() {
        let mut e = CostEstimator::default();
        let mut ctx = PlanContext::fuzzy(1_000, 2, 10);
        ctx.crisp_survivors = Some(400);
        ctx.crisp_count = 1;
        // Uniform pricing: crisp filter (801) beats A₀ (4·√10⁴ = 400)…
        // actually A₀ wins here; raise the random price and the
        // random-heavy plans lose ground to the scan.
        let fa_uniform = e.estimate(PlanKind::FaginA0, &ctx).unwrap();
        let scan_uniform = e.estimate(PlanKind::FullScan, &ctx).unwrap();
        assert!(fa_uniform < scan_uniform);
        e.cost_model = CostModel::random_to_sorted_ratio(50.0).expect("valid ratio");
        let fa_pricey = e.estimate(PlanKind::FaginA0, &ctx).unwrap();
        let scan_pricey = e.estimate(PlanKind::FullScan, &ctx).unwrap();
        assert!(
            fa_pricey > scan_pricey,
            "expensive random access must favor the scan: {fa_pricey} vs {scan_pricey}"
        );
    }

    #[test]
    fn calibration_fits_the_observed_constant() {
        let mut e = CostEstimator::default();
        e.calibrate_fa(4_096, 2, 10, 7);
        assert!(
            (1.0..=8.0).contains(&e.fa_constant),
            "calibrated constant {} outside plausible band",
            e.fa_constant
        );
        // The calibrated estimate should predict a same-size run well.
        let ctx = PlanContext::fuzzy(4_096, 2, 10);
        let predicted = e.estimate(PlanKind::FaginA0, &ctx).unwrap();
        let mut sources = independent_uniform(4_096, 2, 13);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let actual = FaginsAlgorithm
            .top_k(&mut refs, &Min, 10)
            .expect("valid run")
            .stats
            .database_access_cost() as f64;
        assert!(
            (predicted - actual).abs() / actual < 0.5,
            "prediction {predicted} vs actual {actual}"
        );
    }

    #[test]
    fn k_is_capped_by_n() {
        let e = CostEstimator::default();
        let ctx = PlanContext::fuzzy(5, 2, 100);
        let merge = e.estimate(PlanKind::MaxMerge, &ctx).unwrap();
        assert_eq!(merge, 10.0); // m·min(k, N) = 2·5
    }
}
