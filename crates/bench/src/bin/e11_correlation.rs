//! Standalone runner for experiment `e11_correlation`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e11_correlation::run(&cfg).print();
}
