//! A grid file \[NHS84\] — and its dimensionality curse.
//!
//! §2.1: "Two popular multidimensional indexing methods, namely linear
//! quadtrees and grid files, grow exponentially with the
//! dimensionality. So these methods are not practical in these
//! situations." The structure here makes that failure measurable:
//! every bucket split adds a split point to one dimension's linear
//! scale, and the *directory* — the cross product of all scales —
//! multiplies accordingly. [`GridFile::directory_size`] is the quantity
//! experiment E8 plots against the dimension.
//!
//! Implementation: linear scales per dimension, occupied cells stored
//! sparsely (a full dense directory would OOM long before the curve
//! gets interesting — the sparse map stores the same information while
//! letting us *report* the dense directory size the classic structure
//! would have allocated). Splits rehash the affected points; k-NN
//! visits occupied cells in MINDIST order.

use std::collections::HashMap;
use std::fmt;

use crate::geometry::{dist2, validate_point, GeometryError};
use crate::rtree::{IndexAccess, ItemId, Neighbor};

/// Error raised by grid-file operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// Geometry problem with the input point.
    Geometry(GeometryError),
    /// The (dense) directory would exceed the configured limit — the
    /// dimensionality curse made concrete.
    DirectoryOverflow {
        /// Directory size the next split would require.
        required: u128,
        /// The configured cap.
        limit: u128,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Geometry(e) => write!(f, "{e}"),
            GridError::DirectoryOverflow { required, limit } => write!(
                f,
                "grid directory would need {required} cells (limit {limit})"
            ),
        }
    }
}

impl std::error::Error for GridError {}

impl From<GeometryError> for GridError {
    fn from(e: GeometryError) -> Self {
        GridError::Geometry(e)
    }
}

type Cell = Vec<u16>;

/// A grid file over points in `[0, 1]^d`.
#[derive(Debug, Clone)]
pub struct GridFile {
    dim: usize,
    bucket_capacity: usize,
    directory_limit: u128,
    /// Sorted split points per dimension; `s` points make `s+1`
    /// intervals.
    scales: Vec<Vec<f64>>,
    cells: HashMap<Cell, Vec<(Vec<f64>, ItemId)>>,
    len: usize,
    /// Which dimension the next split prefers (round-robin, as in the
    /// classic structure).
    next_split_dim: usize,
}

impl GridFile {
    /// An empty grid file for `dim`-dimensional points, with the given
    /// bucket capacity and a cap on the dense-directory size.
    pub fn new(
        dim: usize,
        bucket_capacity: usize,
        directory_limit: u128,
    ) -> Result<GridFile, GridError> {
        if dim == 0 {
            return Err(GridError::Geometry(GeometryError::EmptyDimension));
        }
        Ok(GridFile {
            dim,
            bucket_capacity: bucket_capacity.max(1),
            directory_limit: directory_limit.max(1),
            scales: vec![Vec::new(); dim],
            cells: HashMap::new(),
            len: 0,
            next_split_dim: 0,
        })
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The size of the dense directory the classic grid file would
    /// allocate: `∏_d (|scales_d| + 1)`.
    pub fn directory_size(&self) -> u128 {
        self.scales.iter().map(|s| (s.len() + 1) as u128).product()
    }

    /// Number of non-empty buckets actually stored.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    fn cell_of(&self, point: &[f64]) -> Cell {
        point
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                // partition_point = count of split points ≤ v.
                self.scales[d].partition_point(|&s| s <= v) as u16
            })
            .collect()
    }

    /// The `[lo, hi]` bounds of a cell along dimension `d` (data lives
    /// in `[0,1]`).
    fn cell_bounds(&self, cell: &Cell, d: usize) -> (f64, f64) {
        let idx = cell[d] as usize;
        let lo = if idx == 0 {
            0.0
        } else {
            self.scales[d][idx - 1]
        };
        let hi = if idx == self.scales[d].len() {
            1.0
        } else {
            self.scales[d][idx]
        };
        (lo, hi)
    }

    /// Inserts a point with its id.
    pub fn insert(&mut self, point: &[f64], id: ItemId) -> Result<(), GridError> {
        validate_point(point)?;
        if point.len() != self.dim {
            return Err(GridError::Geometry(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            }));
        }
        let cell = self.cell_of(point);
        self.cells
            .entry(cell)
            .or_default()
            .push((point.to_vec(), id));
        self.len += 1;

        // Split (adding one scale point and rehashing) while the cell
        // holding the new point overflows; duplicates make further
        // splits unproductive, so `split_cell_region` returning false
        // ends the loop, and a guard bounds pathological cascades.
        let mut guard = 0;
        loop {
            let c = self.cell_of(point);
            if self.cells.get(&c).map_or(0, Vec::len) <= self.bucket_capacity {
                break;
            }
            if !self.split_cell_region(&c)? || guard > 64 {
                break;
            }
            guard += 1;
        }
        Ok(())
    }

    /// Adds one split point through the overflowing cell's region — at
    /// the median of *that cell's* coordinates along the round-robin
    /// dimension — then rehashes. Because scales are global, the split
    /// plane slices the whole directory slab: that multiplication is
    /// exactly the grid file's exponential directory growth. Returns
    /// false if no productive split exists (e.g. duplicate points).
    fn split_cell_region(&mut self, cell: &Cell) -> Result<bool, GridError> {
        // Find a dimension (starting from the round-robin preference)
        // where a split point strictly inside the cell's extent exists.
        for attempt in 0..self.dim {
            let d = (self.next_split_dim + attempt) % self.dim;
            let (lo, hi) = self.cell_bounds(cell, d);
            let mut coords: Vec<f64> = self
                .cells
                .get(cell)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(|(p, _)| p[d])
                .collect();
            coords.sort_by(|a, b| a.total_cmp(b));
            if coords.is_empty() {
                continue;
            }
            let median = coords[coords.len() / 2];
            // The split must actually separate the cell: strictly
            // inside its bounds and distinct from the smallest
            // coordinate (everything < median goes left, so a median
            // equal to the minimum would be unproductive).
            if median <= lo || median >= hi || median <= coords[0] {
                continue;
            }
            // Check directory growth against the limit.
            let required = self
                .scales
                .iter()
                .enumerate()
                .map(|(i, s)| (s.len() + if i == d { 2 } else { 1 }) as u128)
                .product::<u128>();
            if required > self.directory_limit {
                return Err(GridError::DirectoryOverflow {
                    required,
                    limit: self.directory_limit,
                });
            }
            let pos = self.scales[d].partition_point(|&s| s <= median);
            self.scales[d].insert(pos, median);
            self.next_split_dim = (d + 1) % self.dim;
            self.rehash();
            return Ok(true);
        }
        Ok(false)
    }

    fn rehash(&mut self) {
        let all: Vec<(Vec<f64>, ItemId)> = self.cells.drain().flat_map(|(_, v)| v).collect();
        for (p, id) in all {
            let cell = self.cell_of(&p);
            self.cells.entry(cell).or_default().push((p, id));
        }
    }

    /// The `k` nearest neighbors of `query`, visiting occupied buckets
    /// in MINDIST order.
    pub fn knn(&self, query: &[f64], k: usize) -> Result<(Vec<Neighbor>, IndexAccess), GridError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(GridError::Geometry(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            }));
        }
        let mut access = IndexAccess::default();
        if k == 0 || self.is_empty() {
            return Ok((Vec::new(), access));
        }
        // Min-dist² from query to each occupied cell.
        let mut order: Vec<(f64, &Cell)> = self
            .cells
            .keys()
            .map(|cell| {
                let mut d2 = 0.0;
                for (d, &v) in query.iter().enumerate() {
                    let (lo, hi) = self.cell_bounds(cell, d);
                    let delta = if v < lo {
                        lo - v
                    } else if v > hi {
                        v - hi
                    } else {
                        0.0
                    };
                    d2 += delta * delta;
                }
                (d2, cell)
            })
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut result: Vec<Neighbor> = Vec::new();
        let mut kth = f64::INFINITY;
        for (cell_d2, cell) in order {
            if result.len() == k && cell_d2 > kth {
                break;
            }
            access.nodes_visited += 1;
            for (p, id) in &self.cells[cell] {
                access.distance_computations += 1;
                let d2 = dist2(p, query);
                if result.len() < k || d2 < kth {
                    result.push(Neighbor {
                        id: *id,
                        distance: d2.sqrt(),
                    });
                    result.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
                    result.truncate(k);
                    if result.len() == k {
                        kth = result[k - 1].distance * result[k - 1].distance;
                    }
                }
            }
        }
        Ok((result, access))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect()
    }

    #[test]
    fn construction_and_validation() {
        assert!(GridFile::new(0, 8, 1_000).is_err());
        let mut g = GridFile::new(2, 8, 1_000).unwrap();
        assert!(g.is_empty());
        assert!(g.insert(&[0.1], 0).is_err());
        assert!(g.insert(&[0.1, f64::NAN], 0).is_err());
        g.insert(&[0.1, 0.2], 0).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.directory_size(), 1);
    }

    #[test]
    fn splits_grow_the_directory() {
        let mut g = GridFile::new(2, 4, 1_000_000).unwrap();
        for (i, p) in random_points(200, 2, 3).iter().enumerate() {
            g.insert(p, i as ItemId).unwrap();
        }
        assert!(g.directory_size() > 1, "no splits happened");
        assert!(g.occupied_cells() > 1);
        assert_eq!(g.len(), 200);
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = random_points(300, 2, 17);
        let mut g = GridFile::new(2, 4, 1_000_000).unwrap();
        for (i, p) in points.iter().enumerate() {
            g.insert(p, i as ItemId).unwrap();
        }
        for q in random_points(10, 2, 23) {
            let (got, _) = g.knn(&q, 7).unwrap();
            let mut expect: Vec<(f64, ItemId)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (dist2(p, &q).sqrt(), i as ItemId))
                .collect();
            expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let expect_ids: Vec<ItemId> = expect.iter().take(7).map(|&(_, id)| id).collect();
            let got_ids: Vec<ItemId> = got.iter().map(|n| n.id).collect();
            assert_eq!(got_ids, expect_ids);
        }
    }

    #[test]
    fn directory_waste_grows_with_dimension() {
        // The curse: the same data needs a similar number of *buckets*
        // in any dimension, but the dense directory (the cross product
        // of global scales) wastes multiplicatively more cells on empty
        // regions as the dimension grows.
        let waste: Vec<f64> = [2usize, 8]
            .iter()
            .map(|&dim| {
                let mut g = GridFile::new(dim, 4, u128::MAX).unwrap();
                for (i, p) in random_points(400, dim, 31).iter().enumerate() {
                    g.insert(p, i as ItemId).unwrap();
                }
                g.directory_size() as f64 / g.occupied_cells() as f64
            })
            .collect();
        assert!(
            waste[1] > waste[0] * 2.0,
            "expected much more directory waste in 8-D: {waste:?}"
        );
    }

    #[test]
    fn directory_limit_is_enforced() {
        let mut g = GridFile::new(6, 1, 64).unwrap();
        let mut hit_limit = false;
        for (i, p) in random_points(500, 6, 41).iter().enumerate() {
            match g.insert(p, i as ItemId) {
                Ok(()) => {}
                Err(GridError::DirectoryOverflow { required, limit }) => {
                    assert!(required > limit);
                    hit_limit = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_limit, "limit of 64 cells should be hit");
    }

    #[test]
    fn duplicate_heavy_data_terminates() {
        let mut g = GridFile::new(2, 2, 1_000_000).unwrap();
        for i in 0..50 {
            // All identical points: no split can separate them; insert
            // must still terminate and keep the data.
            g.insert(&[0.5, 0.5], i).unwrap();
        }
        assert_eq!(g.len(), 50);
        let (res, _) = g.knn(&[0.5, 0.5], 5).unwrap();
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn knn_on_empty_file() {
        let g = GridFile::new(3, 4, 1_000).unwrap();
        let (res, _) = g.knn(&[0.1, 0.2, 0.3], 4).unwrap();
        assert!(res.is_empty());
    }
}
