//! Standalone runner for experiment `e08_dimensionality`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e08_dimensionality::run(&cfg).print();
}
