//! End-to-end test of the `fmdb-lint` gate: builds a throwaway
//! mini-workspace on disk, runs the real `xtask` binary against it
//! with `--root`, and checks exit status plus diagnostics for every
//! rule — seeded violations must fail, the cleaned-up twin must pass.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A unique temp directory per test, cleaned up on drop.
struct TempCrate {
    root: PathBuf,
}

impl TempCrate {
    fn new(tag: &str) -> TempCrate {
        let root = std::env::temp_dir().join(format!("fmdb-lint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp workspace");
        TempCrate { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create parent dirs");
        }
        fs::write(path, contents).expect("write fixture file");
    }
}

impl Drop for TempCrate {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run_lint(root: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.arg("lint").arg("--root").arg(root);
    cmd.args(extra);
    cmd.output().expect("run xtask lint")
}

/// A crate root satisfying `crate-hygiene`.
const CLEAN_ROOT: &str = "#![forbid(unsafe_code)]\n\
     #![deny(missing_debug_implementations)]\n\
     #![warn(missing_docs)]\n\
     //! Fixture crate.\n\
     pub mod inner;\n";

#[test]
fn clean_workspace_exits_zero() {
    let tc = TempCrate::new("clean");
    tc.write("crates/demo/src/lib.rs", CLEAN_ROOT);
    tc.write(
        "crates/demo/src/inner.rs",
        "//! Inner module.\n/// Doubles.\npub fn double(x: u32) -> u32 { x * 2 }\n",
    );
    let out = run_lint(&tc.root, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "expected clean exit, got:\n{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn each_rule_fails_its_seeded_fixture() {
    let tc = TempCrate::new("seeded");
    // crate-hygiene: missing attributes on the crate root.
    tc.write("crates/demo/src/lib.rs", "pub mod inner;\n");
    // no-panic + no-float-eq in a library module.
    tc.write(
        "crates/demo/src/inner.rs",
        "pub fn f(x: Option<f64>) -> bool {\n    let v = x.unwrap();\n    v == 0.5\n}\n",
    );
    // bounded-channels: unbounded channel in middleware lib code.
    tc.write(
        "crates/middleware/src/lib.rs",
        "#![forbid(unsafe_code)]\n#![deny(missing_debug_implementations)]\n#![warn(missing_docs)]\n//! Fixture.\n/// Spawns.\npub fn spawn_pipeline() {\n    let (_tx, _rx) = std::sync::mpsc::channel::<u32>();\n}\n",
    );
    // no-deprecated: a shim and a caller.
    tc.write(
        "crates/demo/src/dep.rs",
        "#[deprecated(note = \"use len\")]\npub fn old_len() -> usize { 0 }\npub fn caller() -> usize { old_len() }\n",
    );
    let out = run_lint(&tc.root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let json = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-panic",
        "no-float-eq",
        "bounded-channels",
        "crate-hygiene",
        "no-deprecated",
    ] {
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "{rule} missing from:\n{json}"
        );
    }
}

#[test]
fn justified_suppressions_turn_the_gate_green() {
    let tc = TempCrate::new("suppressed");
    tc.write("crates/demo/src/lib.rs", CLEAN_ROOT);
    tc.write(
        "crates/demo/src/inner.rs",
        "//! Inner module.\n\
         /// Unwraps.\n\
         pub fn f(x: Option<f64>) -> f64 {\n\
         \x20   // lint:allow(no-panic): fixture invariant, x is Some in every caller\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    let out = run_lint(&tc.root, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "suppressed finding must pass:\n{stdout}"
    );
}

#[test]
fn unjustified_suppressions_fail_the_gate() {
    let tc = TempCrate::new("unjustified");
    tc.write("crates/demo/src/lib.rs", CLEAN_ROOT);
    tc.write(
        "crates/demo/src/inner.rs",
        "//! Inner module.\n\
         /// Unwraps.\n\
         pub fn f(x: Option<f64>) -> f64 {\n\
         \x20   // lint:allow(no-panic)\n\
         \x20   x.unwrap()\n\
         }\n",
    );
    let out = run_lint(&tc.root, &[]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no justification"), "{stdout}");
    // The bare marker must not silence the underlying finding either.
    assert!(stdout.contains("no-panic"), "{stdout}");
}

#[test]
fn json_output_is_machine_readable() {
    let tc = TempCrate::new("json");
    tc.write("crates/demo/src/lib.rs", CLEAN_ROOT);
    tc.write(
        "crates/demo/src/inner.rs",
        "//! Inner.\n/// Panics.\npub fn f() { panic!(\"boom\") }\n",
    );
    let out = run_lint(&tc.root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    let trimmed = json.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{json}");
    assert!(json.contains("\"rule\": \"no-panic\""), "{json}");
    assert!(json.contains("\"line\": 3"), "{json}");
    assert!(json.contains("inner.rs"), "{json}");
}

#[test]
fn vendored_code_is_not_linted() {
    let tc = TempCrate::new("vendor");
    tc.write("crates/demo/src/lib.rs", CLEAN_ROOT);
    tc.write("crates/demo/src/inner.rs", "//! Inner.\n");
    // A vendored crate root with none of the hygiene attributes and a
    // panic — must be invisible to the gate.
    tc.write(
        "vendor/thirdparty/src/lib.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let out = run_lint(&tc.root, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--format", "yaml"])
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(2));
}
