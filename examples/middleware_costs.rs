//! Watch Theorem 4.1 happen: database access cost of A₀ vs the naive
//! algorithm as N grows, plus the resumable "next k" feature and the
//! mk disjunction merge.
//!
//! ```sh
//! cargo run --release --example middleware_costs
//! ```

use fuzzymm::core::scoring::conorms::Max;
use fuzzymm::middleware::algorithms::fa::FaSession;
use fuzzymm::middleware::algorithms::max_merge::MaxMerge;
use fuzzymm::middleware::workload::independent_uniform;
use fuzzymm::prelude::*;

fn run(
    algo: &dyn TopKAlgorithm,
    sources: &mut [VecSource],
    scoring: &dyn ScoringFunction,
    k: usize,
) -> AccessStats {
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    algo.top_k(&mut refs, scoring, k)
        .expect("valid query")
        .stats
}

fn main() {
    let k = 10;
    println!("top-{k} of a two-conjunct query (min), independent grades:\n");
    println!(
        "{:>9} {:>12} {:>12} {:>10}",
        "N", "A0 cost", "naive cost", "ratio"
    );
    for exp in [10u32, 12, 14, 16, 18] {
        let n = 1usize << exp;
        let mut s1 = independent_uniform(n, 2, 5);
        let fa = run(&FaginsAlgorithm, &mut s1, &Min, k);
        let mut s2 = independent_uniform(n, 2, 5);
        let naive = run(&Naive, &mut s2, &Min, k);
        println!(
            "{:>9} {:>12} {:>12} {:>9.1}%",
            n,
            fa.database_access_cost(),
            naive.database_access_cost(),
            100.0 * fa.database_access_cost() as f64 / naive.database_access_cost() as f64
        );
    }

    println!("\nthe same under max (disjunction): cost mk, independent of N:");
    for exp in [10u32, 14, 18] {
        let n = 1usize << exp;
        let mut s = independent_uniform(n, 2, 5);
        let cost = run(&MaxMerge, &mut s, &ConormScoring(Max), k);
        println!("  N = {:>7}: {}", n, cost);
    }

    println!("\nresumable sessions (\"continue where we left off\", §4.1):");
    let n = 1 << 16;
    let mut sources = independent_uniform(n, 2, 5);
    let refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|s| s as &mut dyn GradedSource)
        .collect();
    let mut session = FaSession::new(refs, &Min).expect("valid session");
    for batch in 1..=3 {
        let result = session.next_k(5).expect("valid batch");
        let ids: Vec<String> = result
            .answers
            .iter()
            .map(|a| format!("#{}", a.id))
            .collect();
        println!(
            "  batch {batch}: {}  (cumulative cost {})",
            ids.join(" "),
            result.stats.database_access_cost()
        );
    }
}
