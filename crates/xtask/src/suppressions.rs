//! `cargo xtask suppressions` — the suppression audit.
//!
//! Lists every `lint:allow(...)` and `ordering(...)` site in the
//! workspace with its justification, and flags **stale** markers: a
//! `lint:allow` that no raw finding of its rule would hit (the code it
//! excused moved or was fixed), or an `ordering(...)` comment that no
//! longer covers an atomic site using that ordering. Stale markers are
//! failures — a justification that excuses nothing is misinformation
//! waiting to excuse the wrong thing later.
//!
//! "Raw" findings come from the rule passes *before* the allow filter
//! ([`crate::analyze::raw_diagnostics`] and [`crate::rules::raw_all`]),
//! so a marker is live exactly when removing it would make `lint` or
//! `analyze` fail.

use crate::analyze::{self, AnalyzedWorkspace};
use crate::diagnostics::Diagnostic;
use crate::rules;
use crate::workspace::{SourceFile, Workspace};

/// One audited marker, rendered for the listing.
#[derive(Debug)]
pub struct SiteReport {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the marker comment.
    pub line: usize,
    /// `lint:allow(rule)`, `lint:allow-file(rule)`, or `ordering(Ord)`.
    pub kind: String,
    /// The written justification.
    pub justification: String,
    /// True when the marker excuses nothing.
    pub stale: bool,
}

fn allow_is_live(file: &SourceFile, raw: &[Diagnostic], idx: usize) -> bool {
    let site = &file.allows[idx];
    let path = file.rel_path.display().to_string();
    raw.iter().any(|d| {
        d.rule == site.rule
            && d.path == path
            && (site.file_wide || (site.line..=site.end_line + 1).contains(&d.line))
    })
}

fn ordering_is_live(file: &SourceFile, aws: &AnalyzedWorkspace<'_>, idx: usize) -> bool {
    let site = &file.ordering_allows[idx];
    let Some(af) = aws
        .files
        .iter()
        .find(|af| af.source.rel_path == file.rel_path)
    else {
        return false;
    };
    let sites: Vec<(usize, &Vec<String>)> = af
        .tree
        .fns
        .iter()
        .flat_map(|f| &f.body.atomics)
        .map(|a| (a.recv_line, &a.orderings))
        .collect();
    let atomic_lines: Vec<usize> = af
        .tree
        .fns
        .iter()
        .flat_map(|f| &f.body.atomics)
        .flat_map(|a| [a.recv_line, a.line])
        .collect();
    // Live iff some atomic site actually uses this ordering within the
    // comment's coverage (base range or contiguous run — the same
    // geometry `ordering_justified` applies when filtering findings).
    sites.iter().any(|(line, orderings)| {
        if !orderings.iter().any(|o| o == &site.ordering) || site.line > *line {
            return false;
        }
        (site.line..=site.end_line + 1).contains(line)
            || (site.end_line + 1..*line).all(|l| atomic_lines.contains(&l))
    })
}

/// Audits every suppression site in the workspace.
pub fn audit(ws: &Workspace) -> Vec<SiteReport> {
    let aws = analyze::parse_workspace(ws);
    let mut raw = rules::raw_all(ws);
    raw.extend(analyze::raw_diagnostics(&aws));
    let mut reports = Vec::new();
    for file in &ws.files {
        let path = file.rel_path.display().to_string();
        for (i, a) in file.allows.iter().enumerate() {
            reports.push(SiteReport {
                path: path.clone(),
                line: a.line,
                kind: format!(
                    "lint:allow{}({})",
                    if a.file_wide { "-file" } else { "" },
                    a.rule
                ),
                justification: a.justification.clone(),
                stale: !allow_is_live(file, &raw, i),
            });
        }
        for (i, o) in file.ordering_allows.iter().enumerate() {
            reports.push(SiteReport {
                path: path.clone(),
                line: o.line,
                kind: format!("ordering({})", o.ordering),
                justification: o.justification.clone(),
                stale: !ordering_is_live(file, &aws, i),
            });
        }
    }
    reports.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    reports
}

/// Renders the audit as the text listing the subcommand prints.
pub fn render(reports: &[SiteReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format!(
            "{}{}:{}  {}  — {}\n",
            if r.stale { "STALE  " } else { "       " },
            r.path,
            r.line,
            r.kind,
            if r.justification.is_empty() {
                "(no justification)"
            } else {
                &r.justification
            },
        ));
    }
    let stale = reports.iter().filter(|r| r.stale).count();
    out.push_str(&format!(
        "fmdb-suppressions: {} site(s), {} stale\n",
        reports.len(),
        stale
    ));
    out
}

/// Renders the audit as a JSON array (hand-rolled, same dialect as
/// `diagnostics::to_json`).
pub fn render_json(reports: &[SiteReport]) -> String {
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    let items: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "{{\"path\": \"{}\", \"line\": {}, \"kind\": \"{}\", \
                 \"justification\": \"{}\", \"stale\": {}}}",
                esc(&r.path),
                r.line,
                esc(&r.kind),
                esc(&r.justification),
                r.stale
            )
        })
        .collect();
    if items.is_empty() {
        "[]".to_owned()
    } else {
        format!("[\n  {}\n]", items.join(",\n  "))
    }
}
