//! Property suite: the batched, parallel [`Engine`] is observationally
//! identical to the scalar reference algorithms.
//!
//! For seeded workloads spanning m ∈ {2, 3, 4} and k ∈ {1, 10, 50},
//! and for *any* engine configuration (batch size, worker threads
//! on/off, grade cache on/off), the engine must return the same
//! answers — same objects, same grades, same order — and charge
//! exactly the same `sorted`/`random` access counts as the scalar
//! `FaginsAlgorithm` / `ThresholdAlgorithm` / `Nra` run. Answers are
//! additionally checked against the exhaustive oracle, so a bug that
//! broke engine and scalar paths identically would still be caught.

use proptest::prelude::*;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::nra::NraLowerBound;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::{TopKAlgorithm, TopKResult};
use fmdb_middleware::engine::{Engine, EngineConfig};
use fmdb_middleware::oracle::{all_grades, verify_top_k};
use fmdb_middleware::request::TopKQuery;
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::workload::independent_uniform;

/// One randomly drawn engine-vs-scalar comparison.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    batch_size: usize,
    parallel: bool,
    cache_capacity: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            60usize..400,
            2usize..=4,
            prop_oneof![Just(1usize), Just(10usize), Just(50usize)],
        ),
        (
            0u64..1_000_000,
            1usize..=130,
            0u64..2,
            prop_oneof![Just(0usize), Just(16usize), Just(4096usize)],
        ),
    )
        .prop_map(
            |((n, m, k), (seed, batch_size, parallel, cache_capacity))| Scenario {
                n,
                m,
                k,
                seed,
                batch_size,
                parallel: parallel == 1,
                cache_capacity,
            },
        )
}

fn scalar_run(algorithm: &dyn TopKAlgorithm, s: Scenario) -> TopKResult {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    algorithm
        .top_k(&mut refs, &Min, s.k)
        .expect("scalar reference run must succeed")
}

fn engine_run(algorithm: &dyn TopKAlgorithm, s: Scenario) -> TopKResult {
    let engine = Engine::new(EngineConfig {
        batch_size: s.batch_size,
        parallel: s.parallel,
        cache_capacity: s.cache_capacity,
        ..EngineConfig::DEFAULT
    });
    let request = TopKQuery::compose()
        .sources(independent_uniform(s.n, s.m, s.seed))
        .scoring(Min)
        .k(s.k)
        .request()
        .expect("request must validate");
    engine
        .run_algorithm(algorithm, &request)
        .expect("engine run must succeed")
}

/// Engine answers and charged counts must match the scalar reference
/// bit for bit; the cache split must partition `random` exactly.
fn assert_equivalent(
    algorithm: &dyn TopKAlgorithm,
    s: Scenario,
) -> Result<(TopKResult, TopKResult), TestCaseError> {
    let scalar = scalar_run(algorithm, s);
    let engine = engine_run(algorithm, s);
    prop_assert_eq!(
        &engine.answers,
        &scalar.answers,
        "{} answers diverged under {:?}",
        algorithm.name(),
        s
    );
    prop_assert_eq!(engine.stats.sorted, scalar.stats.sorted);
    prop_assert_eq!(engine.stats.random, scalar.stats.random);
    if s.cache_capacity > 0 {
        prop_assert_eq!(
            engine.stats.cache_hits + engine.stats.cache_misses,
            engine.stats.random
        );
    } else {
        prop_assert_eq!(engine.stats.cache_hits + engine.stats.cache_misses, 0);
    }
    Ok((scalar, engine))
}

/// Oracle check for exact-grade algorithms (FA, TA).
fn assert_oracle_exact(s: Scenario, result: &TopKResult) -> Result<(), TestCaseError> {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    let verdict = verify_top_k(&mut refs, &Min, &result.answers, s.k);
    prop_assert!(
        verdict.is_ok(),
        "oracle rejected answers under {:?}: {:?}",
        s,
        verdict
    );
    Ok(())
}

/// Oracle check for NRA: reported grades are certified *lower* bounds,
/// so verify the answer **set** instead — every returned object's true
/// grade must be at least the k-th best true grade (tie-tolerant).
fn assert_oracle_set(s: Scenario, result: &TopKResult) -> Result<(), TestCaseError> {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    let truth = all_grades(&mut refs, &Min);
    let mut grades: Vec<_> = truth.values().copied().collect();
    grades.sort_by(|a, b| b.partial_cmp(a).expect("grades are ordered"));
    let expected = s.k.min(grades.len());
    prop_assert_eq!(result.answers.len(), expected);
    let kth = grades[expected - 1];
    let mut seen = std::collections::HashSet::new();
    for answer in &result.answers {
        prop_assert!(seen.insert(answer.id), "duplicate answer {:?}", answer.id);
        let true_grade = truth[&answer.id];
        prop_assert!(
            true_grade >= kth,
            "object {:?} (true grade {:?}) is not in the top {} under {:?}",
            answer.id,
            true_grade,
            s.k,
            s
        );
        prop_assert!(answer.grade <= true_grade, "lower bound exceeds truth");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_fa_matches_scalar_fa_and_the_oracle(s in scenario()) {
        let (_, engine) = assert_equivalent(&FaginsAlgorithm, s)?;
        assert_oracle_exact(s, &engine)?;
    }

    #[test]
    fn engine_ta_matches_scalar_ta_and_the_oracle(s in scenario()) {
        let (_, engine) = assert_equivalent(&ThresholdAlgorithm, s)?;
        assert_oracle_exact(s, &engine)?;
    }

    #[test]
    fn engine_nra_matches_scalar_nra_and_the_oracle(s in scenario()) {
        let (_, engine) = assert_equivalent(&NraLowerBound, s)?;
        assert_oracle_set(s, &engine)?;
    }
}

/// The ISSUE's named grid, pinned explicitly so the exact combinations
/// m ∈ {2,3,4} × k ∈ {1,10,50} are always exercised even if the random
/// scenarios happen to skirt one.
#[test]
fn engine_matches_scalar_on_the_full_named_grid() {
    for m in [2usize, 3, 4] {
        for k in [1usize, 10, 50] {
            for (batch_size, parallel) in [(1, false), (7, true), (64, true), (1000, false)] {
                let s = Scenario {
                    n: 256,
                    m,
                    k,
                    seed: 41 * m as u64 + k as u64,
                    batch_size,
                    parallel,
                    cache_capacity: 64,
                };
                let scalar = scalar_run(&FaginsAlgorithm, s);
                let engine = engine_run(&FaginsAlgorithm, s);
                assert_eq!(engine.answers, scalar.answers, "m={m} k={k}");
                assert_eq!(engine.stats.sorted, scalar.stats.sorted, "m={m} k={k}");
                assert_eq!(engine.stats.random, scalar.stats.random, "m={m} k={k}");
            }
        }
    }
}
