//! The catalog: attribute → repository routing plus id translation.
//!
//! Garlic knows which subsystem evaluates which attribute; the catalog
//! records that routing, owns the [`IdMapper`] (§4.2's one-to-one
//! requirement), and hands the executor *global-id* graded sources.

use std::collections::HashMap;
use std::fmt;

use fmdb_core::query::AtomicQuery;
use fmdb_core::score::Score;
use fmdb_middleware::source::{GradedSource, VecSource};

use crate::idmap::{IdMapError, IdMapper};
use crate::object::Oid;
use crate::repository::{AttributeKind, RepoError, Repository};

/// Error raised by catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// No repository serves this attribute.
    UnknownAttribute(String),
    /// Two repositories claimed the same attribute.
    DuplicateAttribute {
        /// The attribute.
        attribute: String,
        /// The repository that already owns it.
        owner: String,
    },
    /// Repository failure.
    Repo(RepoError),
    /// Id-mapping failure.
    IdMap(IdMapError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownAttribute(a) => {
                write!(f, "no repository serves attribute '{a}'")
            }
            CatalogError::DuplicateAttribute { attribute, owner } => {
                write!(f, "attribute '{attribute}' already served by '{owner}'")
            }
            CatalogError::Repo(e) => write!(f, "{e}"),
            CatalogError::IdMap(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<RepoError> for CatalogError {
    fn from(e: RepoError) -> Self {
        CatalogError::Repo(e)
    }
}

impl From<IdMapError> for CatalogError {
    fn from(e: IdMapError) -> Self {
        CatalogError::IdMap(e)
    }
}

/// The attribute routing table plus id mapping.
pub struct Catalog {
    repos: Vec<Box<dyn Repository>>,
    attr_to_repo: HashMap<String, usize>,
    attr_kind: HashMap<String, AttributeKind>,
    mapper: IdMapper,
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Catalog({} repositories, {} attributes)",
            self.repos.len(),
            self.attr_to_repo.len()
        )
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog {
            repos: Vec::new(),
            attr_to_repo: HashMap::new(),
            attr_kind: HashMap::new(),
            mapper: IdMapper::new(),
        }
    }

    /// Registers a repository whose local ids *are* global ids (the
    /// common in-process case): the identity mapping over its universe.
    pub fn register(&mut self, repo: Box<dyn Repository>) -> Result<(), CatalogError> {
        let n = repo.universe_size() as u64;
        let name = repo.name().to_owned();
        self.mapper.register_identity(&name, n)?;
        self.register_with_existing_mapping(repo)
    }

    /// Registers a repository whose local→global mapping has been (or
    /// will be) supplied through [`Catalog::mapper_mut`].
    pub fn register_with_existing_mapping(
        &mut self,
        repo: Box<dyn Repository>,
    ) -> Result<(), CatalogError> {
        let idx = self.repos.len();
        for (attr, kind) in repo.attributes() {
            if let Some(&owner) = self.attr_to_repo.get(&attr) {
                return Err(CatalogError::DuplicateAttribute {
                    attribute: attr,
                    owner: self.repos[owner].name().to_owned(),
                });
            }
            self.attr_to_repo.insert(attr.clone(), idx);
            self.attr_kind.insert(attr, kind);
        }
        self.repos.push(repo);
        Ok(())
    }

    /// Mutable access to the id mapper for custom registrations.
    pub fn mapper_mut(&mut self) -> &mut IdMapper {
        &mut self.mapper
    }

    /// The kind of an attribute, if known.
    pub fn attribute_kind(&self, attr: &str) -> Option<AttributeKind> {
        self.attr_kind.get(attr).copied()
    }

    /// The repository serving `attr`.
    pub fn repository_for(&self, attr: &str) -> Result<&dyn Repository, CatalogError> {
        let &idx = self
            .attr_to_repo
            .get(attr)
            .ok_or_else(|| CatalogError::UnknownAttribute(attr.to_owned()))?;
        Ok(self.repos[idx].as_ref())
    }

    /// Builds a **global-id** graded source for an atomic query: asks
    /// the owning repository, then translates every local id through
    /// the one-to-one mapping.
    pub fn source_for(&self, query: &AtomicQuery) -> Result<VecSource, CatalogError> {
        let repo = self.repository_for(&query.attribute)?;
        let mut local = repo.source_for(query)?;
        let name = repo.name().to_owned();
        let mut grades: Vec<(Oid, Score)> = Vec::with_capacity(local.info().universe_size);
        local.rewind();
        while let Some(so) = local.sorted_next() {
            grades.push((self.mapper.to_global(&name, so.id)?, so.grade));
        }
        Ok(VecSource::new(local.info().label, grades))
    }

    /// The crisp match set (global ids) for a crisp atomic query, or
    /// `None` if the attribute is fuzzy.
    pub fn crisp_matches(&self, query: &AtomicQuery) -> Result<Option<Vec<Oid>>, CatalogError> {
        let repo = self.repository_for(&query.attribute)?;
        let name = repo.name().to_owned();
        match repo.crisp_matches(query)? {
            None => Ok(None),
            Some(locals) => {
                let mut globals = locals
                    .into_iter()
                    .map(|l| self.mapper.to_global(&name, l))
                    .collect::<Result<Vec<_>, _>>()?;
                globals.sort_unstable();
                Ok(Some(globals))
            }
        }
    }

    /// The largest universe size among registered repositories — the
    /// `N` of the paper's cost bounds.
    pub fn universe_size(&self) -> usize {
        self.repos
            .iter()
            .map(|r| r.universe_size())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Value;
    use crate::repository::TableRepository;
    use fmdb_core::query::{Query, Target};

    fn atom(attr: &str, target: Target) -> AtomicQuery {
        match Query::atomic(attr, target) {
            Query::Atomic(a) => a,
            _ => unreachable!(),
        }
    }

    fn table(name: &str, n: u64) -> TableRepository {
        let mut t = TableRepository::new(name, n);
        t.set(0, "Artist", Value::text("Beatles"));
        t.set(1, "Artist", Value::text("Kinks"));
        t
    }

    #[test]
    fn register_and_route() {
        let mut c = Catalog::new();
        c.register(Box::new(table("cds", 3))).unwrap();
        assert_eq!(c.attribute_kind("Artist"), Some(AttributeKind::Crisp));
        assert_eq!(c.universe_size(), 3);
        assert!(c.repository_for("Artist").is_ok());
        assert!(matches!(
            c.repository_for("Color"),
            Err(CatalogError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let mut c = Catalog::new();
        c.register(Box::new(table("cds", 3))).unwrap();
        let err = c.register(Box::new(table("cds2", 3))).unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateAttribute { .. }));
    }

    #[test]
    fn source_ids_are_translated_to_global() {
        let mut c = Catalog::new();
        // Custom mapping: local 0 → global 100, local 1 → 101, 2 → 102.
        for l in 0..3 {
            c.mapper_mut().register("cds", l, 100 + l).unwrap();
        }
        c.register_with_existing_mapping(Box::new(table("cds", 3)))
            .unwrap();
        let mut src = c
            .source_for(&atom("Artist", Target::Text("Beatles".into())))
            .unwrap();
        assert_eq!(src.random_access(100), Score::ONE);
        assert_eq!(src.random_access(0), Score::ZERO); // untranslated id: unknown
        let matches = c
            .crisp_matches(&atom("Artist", Target::Text("Beatles".into())))
            .unwrap()
            .unwrap();
        assert_eq!(matches, vec![100]);
    }

    #[test]
    fn identity_registration_is_transparent() {
        let mut c = Catalog::new();
        c.register(Box::new(table("cds", 3))).unwrap();
        let mut src = c
            .source_for(&atom("Artist", Target::Text("Kinks".into())))
            .unwrap();
        assert_eq!(src.random_access(1), Score::ONE);
    }
}
