//! The experiment suite: one module per paper claim (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for recorded results).

pub mod e01_fa_scaling;
pub mod e02_disjunction;
pub mod e03_lower_bound;
pub mod e04_scoring_sweep;
pub mod e05_access_costs;
pub mod e06_weighted_queries;
pub mod e07_distance_bounding;
pub mod e08_dimensionality;
pub mod e09_precomputed;
pub mod e10_crisp_filter;
pub mod e11_correlation;
pub mod e12_filter_conditions;
pub mod e13_ta_extension;
pub mod e14_axiom_table;
pub mod e15_weighting_laws;
pub mod e16_optimizer;
pub mod e17_ablations;
pub mod e18_page_costs;
pub mod e19_no_random_access;
pub mod e20_embedding;
pub mod e21_sharding;
pub mod e22_optimality;
pub mod e23_block_pruning;

use crate::report::Report;
use crate::runners::RunCfg;

/// The experiment registry in run order — one runner per paper claim.
/// `e00_run_all` iterates this to time and meter each experiment
/// individually (the `BENCH_engine.json` trajectory).
pub fn experiments() -> Vec<fn(&RunCfg) -> Report> {
    vec![
        e01_fa_scaling::run,
        e02_disjunction::run,
        e03_lower_bound::run,
        e04_scoring_sweep::run,
        e05_access_costs::run,
        e06_weighted_queries::run,
        e07_distance_bounding::run,
        e08_dimensionality::run,
        e09_precomputed::run,
        e10_crisp_filter::run,
        e11_correlation::run,
        e12_filter_conditions::run,
        e13_ta_extension::run,
        e14_axiom_table::run,
        e15_weighting_laws::run,
        e16_optimizer::run,
        e17_ablations::run,
        e18_page_costs::run,
        e19_no_random_access::run,
        e20_embedding::run,
        e21_sharding::run,
        e22_optimality::run,
        e23_block_pruning::run,
    ]
}

/// Runs every experiment in order (the `e00_run_all` binary).
pub fn run_all(cfg: &RunCfg) -> Vec<Report> {
    experiments().into_iter().map(|run| run(cfg)).collect()
}
