//! Graded ("fuzzy") sets, after Zadeh \[Za65\] as used in §3 of the paper.
//!
//! A graded set is a set of pairs `(x, g)` where `x` is an object and
//! `g ∈ [0, 1]` is its grade. It generalizes both a plain set (all grades
//! crisp) and a sorted list (objects ordered by grade) — exactly the
//! mismatch the paper resolves between relational answers and multimedia
//! answers.

use std::collections::HashMap;
use std::hash::Hash;

use crate::score::Score;
use crate::scoring::{Conorm, TNorm};

/// A graded set: objects with grades, iterable in descending grade order.
///
/// Internally kept as a vector of `(object, grade)` pairs plus an index
/// from object to position, so membership queries are O(1) and ordered
/// iteration is O(n log n) once (lazily sorted).
///
/// ```
/// use fmdb_core::graded_set::GradedSet;
/// use fmdb_core::score::Score;
///
/// let mut s = GradedSet::new();
/// s.insert("red-album", Score::clamped(0.9));
/// s.insert("blue-album", Score::clamped(0.2));
/// let top: Vec<_> = s.iter_sorted().map(|(o, _)| *o).collect();
/// assert_eq!(top, vec!["red-album", "blue-album"]);
/// ```
#[derive(Debug, Clone)]
pub struct GradedSet<T> {
    entries: Vec<(T, Score)>,
    index: HashMap<T, usize>,
}

impl<T: Eq + Hash + Clone> Default for GradedSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq + Hash + Clone> GradedSet<T> {
    /// Creates an empty graded set.
    pub fn new() -> Self {
        GradedSet {
            entries: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Creates an empty graded set with room for `capacity` objects.
    pub fn with_capacity(capacity: usize) -> Self {
        GradedSet {
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Number of objects with an explicit grade (including grade 0).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no object has been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or updates the grade of `object`, returning the previous
    /// grade if there was one.
    pub fn insert(&mut self, object: T, grade: Score) -> Option<Score> {
        match self.index.get(&object) {
            Some(&pos) => {
                let old = self.entries[pos].1;
                self.entries[pos].1 = grade;
                Some(old)
            }
            None => {
                self.index.insert(object.clone(), self.entries.len());
                self.entries.push((object, grade));
                None
            }
        }
    }

    /// The grade of `object`, or `None` if it was never inserted.
    ///
    /// Note that in fuzzy-set semantics an absent object has grade 0;
    /// use [`GradedSet::grade_or_zero`] for that reading.
    pub fn grade(&self, object: &T) -> Option<Score> {
        self.index.get(object).map(|&pos| self.entries[pos].1)
    }

    /// The grade of `object`, treating absence as grade 0 (fuzzy-set
    /// membership semantics).
    pub fn grade_or_zero(&self, object: &T) -> Score {
        self.grade(object).unwrap_or(Score::ZERO)
    }

    /// True if `object` has an explicit grade.
    pub fn contains(&self, object: &T) -> bool {
        self.index.contains_key(object)
    }

    /// Iterates over `(object, grade)` in descending grade order.
    ///
    /// Ties are broken by insertion order, which keeps results stable
    /// across runs (the paper allows arbitrary tie-breaking).
    pub fn iter_sorted(&self) -> impl Iterator<Item = (&T, Score)> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| self.entries[b].1.cmp(&self.entries[a].1).then(a.cmp(&b)));
        order.into_iter().map(move |i| {
            let (ref obj, grade) = self.entries[i];
            (obj, grade)
        })
    }

    /// Iterates over `(object, grade)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, Score)> {
        self.entries.iter().map(|(o, g)| (o, *g))
    }

    /// The `k` objects with the highest grades, in descending grade order.
    ///
    /// This is the "top k answers" the paper's queries ask for. If there
    /// are ties at the boundary they are broken arbitrarily but
    /// deterministically (insertion order).
    pub fn top_k(&self, k: usize) -> Vec<(T, Score)> {
        self.iter_sorted()
            .take(k)
            .map(|(o, g)| (o.clone(), g))
            .collect()
    }

    /// The single best object, if any.
    pub fn best(&self) -> Option<(T, Score)> {
        self.top_k(1).into_iter().next()
    }

    /// Fuzzy intersection under a triangular norm `t`:
    /// `μ_{A∧B}(x) = t(μ_A(x), μ_B(x))`.
    ///
    /// Objects appearing in neither set are absent; objects appearing in
    /// only one set are combined with grade 0 for the other (fuzzy-set
    /// semantics), so under a t-norm they get grade
    /// `t(g, 0) ≤ t(1, 0) = 0` and are dropped.
    pub fn intersect<N: TNorm>(&self, other: &GradedSet<T>, norm: &N) -> GradedSet<T> {
        let mut out = GradedSet::with_capacity(self.len().min(other.len()));
        for (obj, g) in self.iter() {
            let h = other.grade_or_zero(obj);
            let combined = norm.t(g, h);
            if combined > Score::ZERO {
                out.insert(obj.clone(), combined);
            }
        }
        out
    }

    /// Fuzzy union under a triangular co-norm `s`:
    /// `μ_{A∨B}(x) = s(μ_A(x), μ_B(x))`.
    pub fn union<S: Conorm>(&self, other: &GradedSet<T>, conorm: &S) -> GradedSet<T> {
        let mut out = GradedSet::with_capacity(self.len() + other.len());
        for (obj, g) in self.iter() {
            let h = other.grade_or_zero(obj);
            out.insert(obj.clone(), conorm.s(g, h));
        }
        for (obj, h) in other.iter() {
            if !self.contains(obj) {
                out.insert(obj.clone(), conorm.s(Score::ZERO, h));
            }
        }
        out
    }

    /// Fuzzy complement under the standard negation `1 − x`, over the
    /// explicit support of this set.
    ///
    /// Note: a true fuzzy complement is defined over the whole universe;
    /// since a `GradedSet` only knows its support, objects never inserted
    /// (implicit grade 0, complement grade 1) cannot be enumerated. Use a
    /// universe-aware layer (the middleware) for full negation semantics.
    pub fn complement(&self) -> GradedSet<T> {
        let mut out = GradedSet::with_capacity(self.len());
        for (obj, g) in self.iter() {
            out.insert(obj.clone(), g.negate());
        }
        out
    }

    /// The fuzzy (sigma-count) cardinality: the sum of all grades —
    /// Zadeh's standard cardinality for graded sets.
    pub fn sigma_count(&self) -> f64 {
        self.entries.iter().map(|(_, g)| g.value()).sum()
    }

    /// The crisp support: objects with strictly positive grade.
    pub fn support(&self) -> Vec<T> {
        self.iter()
            .filter(|&(_, g)| g > Score::ZERO)
            .map(|(o, _)| o.clone())
            .collect()
    }

    /// The crisp `α`-cut: all objects with grade ≥ `alpha`.
    pub fn alpha_cut(&self, alpha: Score) -> Vec<T> {
        self.iter()
            .filter(|&(_, g)| g >= alpha)
            .map(|(o, _)| o.clone())
            .collect()
    }

    /// Converts into the underlying `(object, grade)` pairs, sorted by
    /// descending grade.
    pub fn into_sorted_vec(self) -> Vec<(T, Score)> {
        let mut v = self.entries;
        // Stable sort keeps insertion order for equal grades.
        v.sort_by_key(|&(_, grade)| std::cmp::Reverse(grade));
        v
    }
}

impl<T: Eq + Hash + Clone> FromIterator<(T, Score)> for GradedSet<T> {
    fn from_iter<I: IntoIterator<Item = (T, Score)>>(iter: I) -> Self {
        let mut s = GradedSet::new();
        for (obj, grade) in iter {
            s.insert(obj, grade);
        }
        s
    }
}

impl<T: Eq + Hash + Clone> PartialEq for GradedSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|(o, g)| other.grade(o) == Some(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::conorms::Max;
    use crate::scoring::tnorms::Min;

    fn set(pairs: &[(&'static str, f64)]) -> GradedSet<&'static str> {
        pairs.iter().map(|&(o, g)| (o, Score::clamped(g))).collect()
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = GradedSet::new();
        assert!(s.is_empty());
        assert_eq!(s.insert("a", Score::HALF), None);
        assert_eq!(s.insert("a", Score::ONE), Some(Score::HALF));
        assert_eq!(s.grade(&"a"), Some(Score::ONE));
        assert_eq!(s.grade(&"b"), None);
        assert_eq!(s.grade_or_zero(&"b"), Score::ZERO);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sorted_iteration_descending_with_stable_ties() {
        let s = set(&[("a", 0.5), ("b", 0.9), ("c", 0.5), ("d", 0.1)]);
        let order: Vec<_> = s.iter_sorted().map(|(o, _)| *o).collect();
        assert_eq!(order, vec!["b", "a", "c", "d"]);
    }

    #[test]
    fn top_k_truncates() {
        let s = set(&[("a", 0.5), ("b", 0.9), ("c", 0.7)]);
        let top = s.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "b");
        assert_eq!(top[1].0, "c");
        assert_eq!(s.best().unwrap().0, "b");
    }

    #[test]
    fn top_k_larger_than_len_returns_all() {
        let s = set(&[("a", 0.5)]);
        assert_eq!(s.top_k(10).len(), 1);
    }

    #[test]
    fn intersection_under_min_matches_zadeh_rule() {
        let a = set(&[("x", 0.8), ("y", 0.3)]);
        let b = set(&[("x", 0.5), ("z", 0.9)]);
        let i = a.intersect(&b, &Min);
        assert_eq!(i.grade(&"x"), Some(Score::clamped(0.5)));
        // y has grade 0 in b => min is 0 => dropped from the support.
        assert_eq!(i.grade(&"y"), None);
        assert_eq!(i.grade(&"z"), None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn union_under_max_matches_zadeh_rule() {
        let a = set(&[("x", 0.8), ("y", 0.3)]);
        let b = set(&[("x", 0.5), ("z", 0.9)]);
        let u = a.union(&b, &Max);
        assert_eq!(u.grade(&"x"), Some(Score::clamped(0.8)));
        assert_eq!(u.grade(&"y"), Some(Score::clamped(0.3)));
        assert_eq!(u.grade(&"z"), Some(Score::clamped(0.9)));
    }

    #[test]
    fn complement_negates_support() {
        let a = set(&[("x", 0.8)]);
        let c = a.complement();
        assert!(c.grade(&"x").unwrap().approx_eq(Score::clamped(0.2), 1e-12));
    }

    #[test]
    fn sigma_count_and_support() {
        let a = set(&[("x", 0.5), ("y", 0.25), ("z", 0.0)]);
        assert!((a.sigma_count() - 0.75).abs() < 1e-12);
        let mut sup = a.support();
        sup.sort();
        assert_eq!(sup, vec!["x", "y"]);
    }

    #[test]
    fn alpha_cut_filters() {
        let a = set(&[("x", 0.8), ("y", 0.3), ("z", 0.5)]);
        let mut cut = a.alpha_cut(Score::HALF);
        cut.sort();
        assert_eq!(cut, vec!["x", "z"]);
    }

    #[test]
    fn crisp_sets_behave_like_sets() {
        // When all grades are 0/1, intersection under min is set
        // intersection — the "conservative extension" property from §3.
        let a = set(&[("x", 1.0), ("y", 1.0)]);
        let b = set(&[("y", 1.0), ("z", 1.0)]);
        let i = a.intersect(&b, &Min);
        assert_eq!(i.len(), 1);
        assert_eq!(i.grade(&"y"), Some(Score::ONE));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = set(&[("x", 0.4), ("y", 0.6)]);
        let b = set(&[("y", 0.6), ("x", 0.4)]);
        assert_eq!(a, b);
    }

    #[test]
    fn into_sorted_vec_is_descending() {
        let a = set(&[("x", 0.4), ("y", 0.6), ("z", 0.5)]);
        let v = a.into_sorted_vec();
        let names: Vec<_> = v.iter().map(|(o, _)| *o).collect();
        assert_eq!(names, vec!["y", "z", "x"]);
    }
}
