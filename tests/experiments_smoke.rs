//! Smoke tests: the cheap experiment harnesses run end-to-end in quick
//! mode and produce non-degenerate reports. (The heavyweight sweeps
//! are exercised by `cargo run -p fmdb-bench --bin e00_run_all`.)

use fmdb_bench::experiments;
use fmdb_bench::report::fit_exponent;
use fmdb_bench::runners::RunCfg;

fn quick() -> RunCfg {
    RunCfg::quick()
}

#[test]
fn e02_disjunction_cost_is_exactly_mk() {
    let report = experiments::e02_disjunction::run(&quick());
    // Every row: merge cost column equals the m·k column.
    let table = &report.tables[0];
    assert!(!table.rows.is_empty());
    for row in &table.rows {
        assert_eq!(row[3], row[4], "merge cost must equal m·k: {row:?}");
    }
}

#[test]
fn e14_axiom_table_is_complete_and_correct_for_min() {
    let report = experiments::e14_axiom_table::run(&quick());
    let table = &report.tables[0];
    assert!(table.rows.len() >= 15, "expected all shipped functions");
    let min_row = table
        .rows
        .iter()
        .find(|r| r[0] == "min")
        .expect("min is audited");
    // min: ∧-cons yes, monotone yes, idempotent yes, strict yes, t-norm yes.
    assert_eq!(min_row[1], "yes");
    assert_eq!(min_row[3], "yes");
    assert_eq!(min_row[6], "yes");
    assert_eq!(min_row[7], "yes");
    assert_eq!(min_row[8], "yes");
    // Exactly one t-norm is idempotent (Theorem 3.1's uniqueness).
    let idempotent_tnorms = table
        .rows
        .iter()
        .filter(|r| r[8] == "yes" && r[6] == "yes")
        .count();
    assert_eq!(idempotent_tnorms, 1);
}

#[test]
fn e15_weighting_laws_hold() {
    let report = experiments::e15_weighting_laws::run(&quick());
    let table = &report.tables[0];
    for row in &table.rows {
        for violation in &row[1..] {
            let v: f64 = violation.parse().expect("numeric violation");
            assert!(v < 1e-9, "desideratum violated: {row:?}");
        }
    }
}

#[test]
fn e01_exponents_are_sublinear_for_fa() {
    let report = experiments::e01_fa_scaling::run(&quick());
    let exponents = &report.tables[1];
    for row in &exponents.rows {
        let fitted: f64 = row[2].parse().expect("numeric exponent");
        assert!(
            fitted < 0.95,
            "A0's exponent should be clearly sublinear: {row:?}"
        );
    }
}

#[test]
fn fit_exponent_is_reexported_and_sane() {
    let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i as f64).powf(0.5))).collect();
    assert!((fit_exponent(&pts) - 0.5).abs() < 1e-9);
}

#[test]
fn e18_paged_store_is_cold_expensive_and_warm_cheap() {
    let report = experiments::e18_page_costs::run(&quick());
    let table = &report.tables[0];
    assert!(table.rows.len() >= 2, "expected a page-size sweep");
    let mut prev_reads = u64::MAX;
    for row in &table.rows {
        // Columns: page size, cold ms, cold page reads, warm ms,
        // warm hit rate, readahead loads.
        let cold_reads: u64 = row[2].parse().expect("numeric reads");
        let hit_rate: f64 = row[4].parse().expect("numeric hit rate");
        assert!(cold_reads > 0, "cold run must touch the store: {row:?}");
        assert!(
            cold_reads < prev_reads,
            "larger pages must need fewer cold reads: {row:?}"
        );
        assert!(
            (0.0..=1.0).contains(&hit_rate),
            "hit rate outside [0,1]: {row:?}"
        );
        prev_reads = cold_reads;
    }
    // The metrics check-bench gates on are present and sane.
    let metric = |name: &str| {
        report
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    assert!(metric("cold_page_reads") >= 1.0);
    assert!((0.0..=1.0).contains(&metric("warm_hit_rate")));
    assert!(metric("cold_wall_ms") >= 0.0);
    assert!(metric("warm_wall_ms") >= 0.0);
}

#[test]
fn e19_nra_never_random_accesses_and_stays_close_to_a0() {
    let report = experiments::e19_no_random_access::run(&quick());
    let table = &report.tables[0];
    assert!(!table.rows.is_empty());
    for row in &table.rows {
        let ratio: f64 = row[6].parse().expect("numeric ratio");
        assert!(ratio < 10.0, "NRA blew up: {row:?}");
    }
}

#[test]
fn e16_optimizer_regret_is_small() {
    let report = experiments::e16_optimizer::run(&quick());
    // The sweep emits one regret metric per cell plus the two
    // aggregates check-bench gates on; all are ≥ 1 by construction.
    let metric = |name: &str| {
        report
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    let cells = report
        .metrics
        .iter()
        .filter(|(n, _)| n.starts_with("regret_sel"))
        .count();
    assert!(cells >= 8, "expected a full sweep, got {cells} cells");
    for (name, v) in &report.metrics {
        assert!(*v >= 1.0 - 1e-9, "{name} below 1: {v}");
    }
    assert!(metric("regret_median") <= 2.0, "median regret too high");
    assert!(metric("regret_max") <= 10.0, "max regret too high");
}
