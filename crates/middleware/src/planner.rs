//! The unified cost-based planner (§4.2).
//!
//! "In order to use an optimizer, we need to understand the cost of
//! applying various operators over various data in various
//! repositories." This module is that understanding, in one place:
//! a [`PhysicalPlan`] enum naming every strategy the workspace can
//! execute, cost formulas pricing each of them through the caller's
//! [`CostModel`], and one [`choose_plan`] entry point that *both*
//! auto-selection paths — `ExecPolicy::Algo::Auto` resolved by
//! `Engine::run`, and the Garlic planner's cost-based mode — route
//! through. The old per-layer heuristics are gone, not wrapped.
//!
//! ## The cost model
//!
//! All formulas work from per-source equi-depth grade histograms
//! ([`crate::stats::SourceStats`]) and the independence assumption.
//! Write `F̄_i(g)` for source `i`'s fraction of grades ≥ `g`, `n` for
//! the universe size, `m` for the number of sources, and `y_k` for the
//! estimated k-th best overall grade (found by bisection on the
//! expected number of objects graded ≥ `g`). Three derived quantities
//! drive everything:
//!
//! * `d_i = n_i · F̄_i(y_k)` — sorted depth at which list `i` falls to
//!   `y_k`;
//! * `d_FA` — the depth at which `k` objects are expected in *all*
//!   prefixes (`n·Π d_i(d)/n_i = k`), Theorem 4.1's `N^{(m−1)/m}
//!   k^{1/m}` under uniform grades;
//! * `U(d) = n · (1 − Π (1 − d/n_i))` — distinct objects expected in
//!   the union of all `m` prefixes of depth `d`.
//!
//! | plan          | sorted accesses       | random accesses            |
//! |---------------|-----------------------|----------------------------|
//! | FA (A₀)       | `m·d_FA`              | `m·U(d_FA) − m·d_FA`       |
//! | TA            | `m·d_TA`              | `(m−1)·U(d_TA)`            |
//! | NRA           | `m·1.2·max(d_FA,d_TA)`| 0                          |
//! | CA(h)         | like NRA              | `0.75·(m−1)·d/h`           |
//! | θ-approx TA/NRA | same with `y_k/(1+θ)` | same with `y_k/(1+θ)`    |
//! | crisp filter  | `Σ_crisp (s+1)`       | `s · #fuzzy`               |
//! | max-merge     | `m·k`                 | 0                          |
//! | full scan     | `Σ n_i`               | 0                          |
//!
//! with `d_TA = min_i d_i` for zero-absorbing combiners (the threshold
//! `τ = min_i bottom_i` falls to `y_k` as soon as the fastest-decaying
//! list does) and `max_i d_i` for max-like ones. The NRA depth factor
//! (1.2) and the CA random factor (0.75) are fitted against measured
//! runs on independent-uniform instances; the proptest regret suite
//! keeps them honest.
//!
//! ## Preference order
//!
//! Estimated costs tie (exactly, under `total_cmp`) more often than
//! one would expect — crisp data produces identical depths. Ties are
//! broken by a fixed preference order chosen for answer quality:
//! crisp-filter, max-merge, TA, NRA, CA, FA, θ-TA, θ-NRA, full-scan.
//! TA precedes NRA because TA reports true grades while NRA's are
//! certified lower bounds; a caller that needs exact grades even at a
//! cost premium sets [`PlanQuery::exact_grades`], which removes the
//! NRA-family from the candidate set entirely (the Garlic facade does
//! this — its `QueryResult` grades are user-facing).

use std::fmt;

use fmdb_core::scoring::ScoringFunction;
use fmdb_core::stats::DEFAULT_HISTOGRAM_BINS;

use crate::algorithms::approx::{ApproxNra, ApproxTa};
use crate::algorithms::ca::CombinedAlgorithm;
use crate::algorithms::fa::FaginsAlgorithm;
use crate::algorithms::max_merge::MaxMerge;
use crate::algorithms::nra::NraLowerBound;
use crate::algorithms::ta::ThresholdAlgorithm;
use crate::algorithms::TopKAlgorithm;
use crate::policy::ExecPolicy;
use crate::source::GradedSource;
use crate::stats::{CostModel, SourceStats};

/// NRA runs deeper than FA's phase-1 depth before its bounds certify
/// the answer; fitted against measured NRA sorted counts (1.03–1.4×
/// across n ∈ [300, 2000], m ∈ [2, 4]).
const NRA_DEPTH_FACTOR: f64 = 1.2;

/// CA performs one random-access round every `h` sorted rounds, but
/// skips objects already resolved; fitted against measured CA runs.
const CA_RANDOM_FACTOR: f64 = 0.75;

/// Charged-cost equivalent of spawning and coordinating one shard
/// worker — the setup side of the sharded-vs-serial latency tradeoff.
const SHARD_SETUP_COST: f64 = 256.0;

/// Every physical top-k strategy the workspace can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicalPlan {
    /// Fagin's A₀ (§4.1).
    Fa,
    /// The Threshold Algorithm.
    Ta,
    /// No-random-access; reported grades are certified lower bounds.
    Nra,
    /// The Combined Algorithm with interleave depth `h`.
    Ca {
        /// One random-access round per `h` sorted rounds.
        h: usize,
    },
    /// θ-approximate TA.
    ApproxTa,
    /// θ-approximate NRA.
    ApproxNra,
    /// Resolve crisp conjuncts to a match set, then random-access only
    /// the survivors' fuzzy grades (§4.1's Beatles strategy).
    CrispFilter,
    /// Sorted-only merge for max-like combiners (`m·k` accesses).
    MaxMerge,
    /// Drain every source; reference semantics, always applicable.
    FullScan,
}

impl PhysicalPlan {
    /// The kebab-case display name (matches the algorithm names where
    /// a middleware algorithm implements the plan).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalPlan::Fa => "fagin-a0",
            PhysicalPlan::Ta => "threshold-ta",
            PhysicalPlan::Nra => "nra-lower-bound",
            PhysicalPlan::Ca { .. } => "combined-ca",
            PhysicalPlan::ApproxTa => "approx-ta",
            PhysicalPlan::ApproxNra => "approx-nra",
            PhysicalPlan::CrispFilter => "crisp-filter",
            PhysicalPlan::MaxMerge => "max-merge",
            PhysicalPlan::FullScan => "full-scan",
        }
    }

    /// Position in the deterministic tie-break order (lower wins).
    fn preference(&self) -> u8 {
        match self {
            PhysicalPlan::CrispFilter => 0,
            PhysicalPlan::MaxMerge => 1,
            PhysicalPlan::Ta => 2,
            PhysicalPlan::Nra => 3,
            PhysicalPlan::Ca { .. } => 4,
            PhysicalPlan::Fa => 5,
            PhysicalPlan::ApproxTa => 6,
            PhysicalPlan::ApproxNra => 7,
            PhysicalPlan::FullScan => 8,
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the query's combiner behaves, as far as cost estimation cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombinerKind {
    /// One zero argument forces the overall grade to zero (t-norms:
    /// min, product, …) — the common conjunction case.
    #[default]
    ZeroAbsorbing,
    /// The overall grade is (close to) the maximum argument (co-norms)
    /// — sorted-only merging applies.
    MaxLike,
    /// Anything else (means, exotic monotone combiners); priced like a
    /// conjunction, conservatively.
    Other,
}

/// Classifies a scoring function by probing it on a small grade grid —
/// the same technique the Garlic planner uses on query combiners, now
/// shared so the engine can classify arbitrary request scorings.
pub fn classify_combiner(scoring: &dyn ScoringFunction, arity: usize) -> CombinerKind {
    use fmdb_core::score::Score;
    let m = arity.max(1);
    let samples = [0.15f64, 0.5, 0.85, 1.0];
    // Zero-absorbing: any single zero argument annihilates.
    let mut zero_absorbing = true;
    'outer_zero: for pos in 0..m {
        for &s in &samples {
            let mut grades = vec![Score::clamped(s); m];
            grades[pos] = Score::ZERO;
            if scoring.combine(&grades) > Score::ZERO {
                zero_absorbing = false;
                break 'outer_zero;
            }
        }
    }
    if zero_absorbing {
        return CombinerKind::ZeroAbsorbing;
    }
    // Max-like: the combination equals the max argument on the grid.
    let mut max_like = true;
    'outer_max: for pos in 0..m {
        for &hi in &samples {
            for &lo in &samples {
                if lo > hi {
                    continue;
                }
                let mut grades = vec![Score::clamped(lo); m];
                grades[pos] = Score::clamped(hi);
                if !scoring.combine(&grades).approx_eq(Score::clamped(hi), 1e-9) {
                    max_like = false;
                    break 'outer_max;
                }
            }
        }
    }
    if max_like {
        CombinerKind::MaxLike
    } else {
        CombinerKind::Other
    }
}

/// The planner's view of *what* is being asked — enough shape to know
/// which strategies apply and how to price them.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanQuery {
    /// Universe size (the paper's `N`).
    pub n: usize,
    /// Number of graded sources (query arity).
    pub m: usize,
    /// Answers requested.
    pub k: usize,
    /// Combiner behavior.
    pub combiner: CombinerKind,
    /// How many of the `m` atoms are crisp predicates.
    pub crisp_count: usize,
    /// Estimated objects surviving the crisp conjuncts (the *smallest*
    /// per-atom match count), when known.
    pub crisp_survivors: Option<u64>,
    /// When set, plans whose reported grades are lower bounds rather
    /// than true grades (NRA, θ-NRA) are excluded from the candidate
    /// set. The Garlic facade sets this: its results are user-facing.
    pub exact_grades: bool,
    /// Calibrated constant for Theorem 4.1's closed-form A₀ estimate,
    /// used when no histograms are available (see
    /// [`fa_theorem41_cost`]). Garlic's `CostEstimator::calibrate_fa`
    /// fits it by measuring a live A₀ run.
    pub fa_constant: f64,
    /// Expected fraction of sorted entries a full scan can skip via
    /// block-max pruning (zone maps over the embedded corpus, page
    /// bounds in the paged store), in `[0, 1]`. `0` — the default —
    /// prices an unpruned scan; callers with a live skip-rate reading
    /// (e.g. [`crate::stats::AccessStats::pages_skipped`] over pages
    /// touched) feed it back here so FullScan competes fairly against
    /// the threshold family on selective workloads.
    pub expected_skip: f64,
}

impl PlanQuery {
    /// A plain fuzzy top-k over `m` sources — the engine-level shape
    /// (no crisp structure, zero-absorbing combiner, lower-bound
    /// grades acceptable).
    pub fn fuzzy(n: usize, m: usize, k: usize) -> PlanQuery {
        PlanQuery {
            n,
            m: m.max(1),
            k,
            combiner: CombinerKind::ZeroAbsorbing,
            crisp_count: 0,
            crisp_survivors: None,
            exact_grades: false,
            fa_constant: 1.0,
            expected_skip: 0.0,
        }
    }

    /// Sets the combiner kind.
    pub fn combiner(mut self, kind: CombinerKind) -> PlanQuery {
        self.combiner = kind;
        self
    }

    /// Declares crisp structure: `count` crisp atoms with at most
    /// `survivors` objects matching all of them.
    pub fn crisp(mut self, count: usize, survivors: u64) -> PlanQuery {
        self.crisp_count = count.min(self.m);
        self.crisp_survivors = Some(survivors);
        self
    }

    /// Requires reported grades to be true grades (excludes the
    /// NRA family from the candidates).
    pub fn exact_grades(mut self) -> PlanQuery {
        self.exact_grades = true;
        self
    }

    /// Sets the Theorem 4.1 constant used by the stats-free A₀
    /// estimate.
    pub fn fa_constant(mut self, c: f64) -> PlanQuery {
        if c.is_finite() && c > 0.0 {
            self.fa_constant = c;
        }
        self
    }

    /// Declares the expected block-max skip fraction for full scans.
    /// Out-of-range or non-finite values are ignored (the conservative
    /// unpruned price stands).
    pub fn expected_skip(mut self, fraction: f64) -> PlanQuery {
        if fraction.is_finite() && (0.0..=1.0).contains(&fraction) {
            self.expected_skip = fraction;
        }
        self
    }
}

/// Per-query statistics: one [`SourceStats`] per source, in source
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Per-source statistics, aligned with the query's source order.
    pub per_source: Vec<SourceStats>,
}

impl QueryStats {
    /// Wraps per-source stats.
    pub fn new(per_source: Vec<SourceStats>) -> QueryStats {
        QueryStats { per_source }
    }

    /// Gathers statistics from sources via the
    /// [`GradedSource::grade_histogram`] hook. Returns `None` unless
    /// *every* source can provide a histogram — partial statistics
    /// would silently skew the comparison between plans.
    pub fn from_sources(sources: &mut [&mut dyn GradedSource]) -> Option<QueryStats> {
        let per_source: Option<Vec<SourceStats>> = sources
            .iter()
            .map(|s| {
                s.grade_histogram(DEFAULT_HISTOGRAM_BINS)
                    .map(SourceStats::new)
            })
            .collect();
        Some(QueryStats::new(per_source?))
    }
}

/// What the plan choice was based on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsBasis {
    /// Per-source histograms were available; costs were estimated.
    Histograms {
        /// Number of sources with statistics.
        sources: usize,
    },
    /// No statistics — the documented static fallback picked the plan.
    StaticFallback,
}

/// The planner's decision record: chosen plan, every candidate's
/// estimated charged cost, the statistics basis, and the gated shard
/// fanout advice. Surfaced by `Engine::explain` and dumped by E16.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The winning plan.
    pub chosen: PhysicalPlan,
    /// All applicable candidates with estimated charged costs,
    /// ascending (the chosen plan is first).
    pub candidates: Vec<(PhysicalPlan, f64)>,
    /// The cost model the estimates were charged under.
    pub cost: CostModel,
    /// Statistics the choice was based on.
    pub basis: StatsBasis,
    /// Shard fanout advice after gating (1 = run serial); see
    /// [`preferred_fanout`].
    pub fanout: usize,
}

impl Explain {
    /// The chosen plan's estimated charged cost, if estimated.
    pub fn chosen_cost(&self) -> Option<f64> {
        self.candidates.first().map(|(_, c)| *c)
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan {}", self.chosen)?;
        match self.basis {
            StatsBasis::Histograms { sources } => {
                write!(f, " [histograms over {sources} sources]")?
            }
            StatsBasis::StaticFallback => write!(f, " [static fallback, no stats]")?,
        }
        write!(
            f,
            " under c_S={} c_R={}, fanout {}",
            self.cost.sorted_unit, self.cost.random_unit, self.fanout
        )?;
        if !self.candidates.is_empty() {
            write!(f, "; candidates:")?;
            for (plan, cost) in &self.candidates {
                write!(f, " {plan}={cost:.0}")?;
            }
        }
        Ok(())
    }
}

/// Theorem 4.1's closed-form A₀ cost, `c · N^{(m−1)/m} · k^{1/m}`,
/// charged half as sorted and half as random access — the stats-free
/// estimate Garlic's calibrated estimator has always used, now owned
/// by the unified planner.
pub fn fa_theorem41_cost(n: usize, m: usize, k: usize, constant: f64, cost: &CostModel) -> f64 {
    let n = n.max(1) as f64;
    let m = m.max(1) as f64;
    let k = (k.max(1) as f64).min(n);
    let accesses = constant * n.powf((m - 1.0) / m) * k.powf(1.0 / m);
    let half = accesses / 2.0;
    half * cost.sorted_unit + half * cost.random_unit
}

/// Sorted/random access counts — an estimate before pricing.
#[derive(Debug, Clone, Copy)]
struct Accesses {
    sorted: f64,
    random: f64,
}

impl Accesses {
    fn charged(&self, cost: &CostModel) -> f64 {
        self.sorted * cost.sorted_unit + self.random * cost.random_unit
    }
}

/// The per-query estimation context: resolves `F̄_i`, `y_k`, depths
/// and union sizes from histograms (or the uniform-grade assumption
/// when a source lacks one).
struct Estimator<'a> {
    q: &'a PlanQuery,
    stats: Option<&'a QueryStats>,
}

impl<'a> Estimator<'a> {
    fn new(q: &'a PlanQuery, stats: Option<&'a QueryStats>) -> Estimator<'a> {
        Estimator { q, stats }
    }

    fn n(&self) -> f64 {
        self.q.n.max(1) as f64
    }

    fn k(&self) -> f64 {
        (self.q.k.max(1) as f64).min(self.n())
    }

    fn universe_of(&self, i: usize) -> f64 {
        self.stats
            .and_then(|s| s.per_source.get(i))
            .map(|s| s.universe().max(1) as f64)
            .unwrap_or_else(|| self.n())
    }

    /// `F̄_i(g)`: fraction of source `i`'s grades ≥ `g`.
    fn fbar(&self, i: usize, g: f64) -> f64 {
        match self.stats.and_then(|s| s.per_source.get(i)) {
            Some(s) => s.histogram.fraction_above(g),
            // Uniform-grade assumption.
            None => (1.0 - g).clamp(0.0, 1.0),
        }
    }

    /// Expected number of objects whose overall grade is ≥ `g`.
    fn expected_count(&self, g: f64) -> f64 {
        let m = self.q.m;
        match self.q.combiner {
            CombinerKind::MaxLike => {
                let mut miss = 1.0;
                for i in 0..m {
                    miss *= 1.0 - self.fbar(i, g).clamp(0.0, 1.0);
                }
                self.n() * (1.0 - miss)
            }
            // Zero-absorbing (and, conservatively, anything else):
            // independence product.
            _ => {
                let mut p = 1.0;
                for i in 0..m {
                    p *= self.fbar(i, g).clamp(0.0, 1.0);
                }
                self.n() * p
            }
        }
    }

    /// The estimated k-th best overall grade: the largest `g` with
    /// `expected_count(g) ≥ k`, by bisection.
    fn y_k(&self) -> f64 {
        if self.expected_count(1.0) >= self.k() {
            return 1.0;
        }
        if self.expected_count(0.0) < self.k() {
            return 0.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if self.expected_count(mid) >= self.k() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Sorted depth at which source `i` falls below grade `y`.
    fn depth(&self, i: usize, y: f64) -> f64 {
        (self.universe_of(i) * self.fbar(i, y)).clamp(1.0, self.universe_of(i))
    }

    /// TA's halt depth for target grade `y`.
    fn d_ta(&self, y: f64) -> f64 {
        let m = self.q.m;
        let mut best = match self.q.combiner {
            CombinerKind::MaxLike => 0.0f64,
            _ => f64::INFINITY,
        };
        for i in 0..m {
            let d = self.depth(i, y);
            best = match self.q.combiner {
                CombinerKind::MaxLike => best.max(d),
                _ => best.min(d),
            };
        }
        if best.is_finite() {
            best.clamp(1.0, self.n())
        } else {
            self.n()
        }
    }

    /// FA's phase-1 depth: `k` objects expected in all `m` prefixes.
    fn d_fa(&self) -> f64 {
        let n = self.n();
        let in_all = |d: f64| {
            let mut p = 1.0;
            for i in 0..self.q.m {
                let u = self.universe_of(i);
                p *= (d.min(u) / u).clamp(0.0, 1.0);
            }
            n * p
        };
        if in_all(n) < self.k() {
            return n;
        }
        let (mut lo, mut hi) = (1.0f64, n);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if in_all(mid) >= self.k() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi.clamp(1.0, n)
    }

    /// Expected distinct objects in the union of all `m` prefixes of
    /// depth `d`.
    fn union_seen(&self, d: f64) -> f64 {
        let mut miss = 1.0;
        for i in 0..self.q.m {
            let u = self.universe_of(i);
            miss *= (1.0 - d.min(u) / u).clamp(0.0, 1.0);
        }
        self.n() * (1.0 - miss)
    }

    /// Access estimate for one plan at slack `theta`; `None` when the
    /// plan does not apply to this query shape.
    fn accesses(&self, plan: PhysicalPlan, theta: f64) -> Option<Accesses> {
        let m = self.q.m as f64;
        let y_exact = self.y_k();
        // θ-approximate variants halt once the threshold falls to
        // (1+θ)·y_k — a *higher* grade, hence a shallower depth.
        let y_approx = if theta > 0.0 {
            (y_exact * (1.0 + theta)).clamp(0.0, 1.0)
        } else {
            y_exact
        };
        match plan {
            PhysicalPlan::Fa => {
                let d = self.d_fa();
                let seen = self.union_seen(d);
                Some(Accesses {
                    sorted: m * d,
                    random: (m * seen - m * d).max(0.0),
                })
            }
            PhysicalPlan::Ta | PhysicalPlan::ApproxTa => {
                let y = if matches!(plan, PhysicalPlan::ApproxTa) {
                    y_approx
                } else {
                    y_exact
                };
                let d = self.d_ta(y);
                Some(Accesses {
                    sorted: m * d,
                    random: (m - 1.0).max(0.0) * self.union_seen(d),
                })
            }
            PhysicalPlan::Nra | PhysicalPlan::ApproxNra => {
                let y = if matches!(plan, PhysicalPlan::ApproxNra) {
                    y_approx
                } else {
                    y_exact
                };
                let d = (NRA_DEPTH_FACTOR * self.d_ta(y).max(self.d_fa())).min(self.n());
                Some(Accesses {
                    sorted: m * d,
                    random: 0.0,
                })
            }
            PhysicalPlan::Ca { h } => {
                let d = (NRA_DEPTH_FACTOR * self.d_ta(y_approx).max(self.d_fa())).min(self.n());
                Some(Accesses {
                    sorted: m * d,
                    random: CA_RANDOM_FACTOR * (m - 1.0).max(0.0) * d / h.max(1) as f64,
                })
            }
            PhysicalPlan::CrispFilter => {
                let s = self.q.crisp_survivors? as f64;
                if self.q.crisp_count == 0
                    || !matches!(self.q.combiner, CombinerKind::ZeroAbsorbing)
                {
                    return None;
                }
                let fuzzy = (self.q.m - self.q.crisp_count) as f64;
                Some(Accesses {
                    sorted: self.q.crisp_count as f64 * (s + 1.0).min(self.n()),
                    random: s * fuzzy,
                })
            }
            PhysicalPlan::MaxMerge => {
                if !matches!(self.q.combiner, CombinerKind::MaxLike) {
                    return None;
                }
                Some(Accesses {
                    sorted: m * self.k(),
                    random: 0.0,
                })
            }
            PhysicalPlan::FullScan => {
                let mut total = 0.0;
                for i in 0..self.q.m {
                    total += self.universe_of(i);
                }
                // Block-max pruning lets a bounded scan skip the
                // fraction of entries the caller measured as provably
                // below its threshold; the unpruned price is the
                // `expected_skip == 0` default.
                Some(Accesses {
                    sorted: total * (1.0 - self.q.expected_skip),
                    random: 0.0,
                })
            }
        }
    }
}

/// Estimated charged cost of `plan` for `query` under `cost`, or
/// `None` when the plan does not apply (e.g. a crisp filter without
/// crisp atoms, a max-merge under a conjunction).
///
/// With `stats == None`, FA uses the calibrated Theorem 4.1 closed
/// form ([`fa_theorem41_cost`] with [`PlanQuery::fa_constant`]); every
/// other plan falls back to the uniform-grade assumption.
pub fn estimate_cost(
    plan: PhysicalPlan,
    query: &PlanQuery,
    stats: Option<&QueryStats>,
    cost: &CostModel,
    theta: f64,
) -> Option<f64> {
    if stats.is_none() && matches!(plan, PhysicalPlan::Fa) {
        return Some(fa_theorem41_cost(
            query.n,
            query.m,
            query.k,
            query.fa_constant,
            cost,
        ));
    }
    Estimator::new(query, stats)
        .accesses(plan, theta)
        .map(|a| a.charged(cost))
}

/// The latency proxy for running `work` charged-cost units over
/// `fanout` partitions: per-partition work plus per-worker setup.
pub fn sharded_latency(work: f64, fanout: usize) -> f64 {
    let p = fanout.max(1) as f64;
    work / p + SHARD_SETUP_COST * (p - 1.0)
}

/// The fanout minimizing [`sharded_latency`], gated by the corpus:
/// never more than `max_shards`, and at least `min_items` objects per
/// partition (the same gate `Engine::try_sharded` applies). Returns 1
/// (serial) when sharding cannot pay for its setup.
pub fn preferred_fanout(work: f64, universe: usize, max_shards: usize, min_items: usize) -> usize {
    let gate = max_shards.min(universe / min_items.max(1)).max(1);
    let mut best = 1usize;
    let mut best_latency = sharded_latency(work, 1);
    for p in 2..=gate {
        let latency = sharded_latency(work, p);
        if latency < best_latency {
            best = p;
            best_latency = latency;
        }
    }
    best
}

/// Picks the cheapest applicable [`PhysicalPlan`] for `query` under
/// `policy`, returning the full decision record.
///
/// With statistics, every applicable strategy is priced through the
/// policy's [`CostModel`] and the cheapest wins (ties broken by the
/// documented preference order). Without statistics the **static
/// fallback** restricts the algorithm-family candidates to one pick:
/// θ > 0 takes the θ-approximate variant, and otherwise NRA when the
/// cost model's interleave depth `⌊c_R/c_S⌋` is ≥ 2, TA when it is
/// not ([`static_plan`]). The fallback never picks FA: E22 measured
/// TA/NRA at or below FA's charged cost across the entire cost-ratio
/// sweep (NRA by orders of magnitude once random access is
/// expensive), and TA is instance-optimal among exact algorithms that
/// use random access — FA's remaining role is explicit selection and
/// the A₀ paper-reproduction experiments. Queries that demand exact
/// grades substitute TA (or CA at h ≥ 2, which also reports true
/// grades) for NRA.
///
/// The *structural* plans — crisp-filter, max-merge, full-scan — stay
/// in the race even without statistics: their estimates come from
/// measured crisp selectivity and plain arithmetic, not from grade
/// histograms, so a selective crisp conjunct or a max-like combiner
/// beats the fallback algorithm whenever its closed form is cheaper.
pub fn choose_plan(query: &PlanQuery, stats: Option<&QueryStats>, policy: &ExecPolicy) -> Explain {
    let theta = policy.approximation.theta().max(0.0);
    let approximate = policy.approximation.is_approximate();
    let h = policy.interleave();
    let fanout = match policy.effective_shards(1, 1) {
        (shards, min_items) if shards >= 2 => {
            preferred_fanout(query.n as f64 * query.m as f64, query.n, shards, min_items)
        }
        _ => 1,
    };

    let mut candidates: Vec<PhysicalPlan> = Vec::new();
    if stats.is_some() {
        if approximate {
            candidates.push(PhysicalPlan::ApproxTa);
            if !query.exact_grades {
                candidates.push(PhysicalPlan::ApproxNra);
            }
        } else {
            candidates.push(PhysicalPlan::Ta);
            if !query.exact_grades {
                candidates.push(PhysicalPlan::Nra);
            }
            candidates.push(PhysicalPlan::Fa);
        }
        if h >= 2 {
            candidates.push(PhysicalPlan::Ca { h });
        }
    } else {
        candidates.push(static_plan(query.exact_grades, approximate, h));
    }
    candidates.push(PhysicalPlan::CrispFilter);
    candidates.push(PhysicalPlan::MaxMerge);
    candidates.push(PhysicalPlan::FullScan);

    let mut priced: Vec<(PhysicalPlan, f64)> = candidates
        .into_iter()
        .filter_map(|plan| {
            estimate_cost(plan, query, stats, &policy.cost, theta).map(|c| (plan, c))
        })
        .collect();
    priced.sort_by(|a, b| {
        a.1.total_cmp(&b.1)
            .then(a.0.preference().cmp(&b.0.preference()))
    });

    let chosen = priced
        .first()
        .map(|(p, _)| *p)
        // Unreachable in practice (FullScan always applies), but the
        // planner must not panic on a degenerate query.
        .unwrap_or(PhysicalPlan::FullScan);
    Explain {
        chosen,
        candidates: priced,
        cost: policy.cost,
        basis: match stats {
            Some(s) => StatsBasis::Histograms {
                sources: s.per_source.len(),
            },
            None => StatsBasis::StaticFallback,
        },
        fanout,
    }
}

/// The documented stats-free fallback (see [`choose_plan`]): the plan
/// [`crate::policy::ExecPolicy::algorithm`] resolves `Algo::Auto` to
/// when no statistics are in reach.
pub fn static_plan(exact_grades: bool, approximate: bool, h: usize) -> PhysicalPlan {
    let sorted_only_ok = !exact_grades;
    match (approximate, h >= 2, sorted_only_ok) {
        (true, true, true) => PhysicalPlan::ApproxNra,
        (true, _, _) => PhysicalPlan::ApproxTa,
        (false, true, true) => PhysicalPlan::Nra,
        (false, true, false) => PhysicalPlan::Ca { h },
        (false, false, _) => PhysicalPlan::Ta,
    }
}

/// Resolves a plan to the middleware algorithm executing it, or `None`
/// for the two strategies that live above the algorithm layer
/// (crisp-filter and full-scan, executed by the Garlic layer).
pub fn plan_algorithm(
    plan: PhysicalPlan,
    theta: f64,
) -> Option<Box<dyn TopKAlgorithm + Send + Sync>> {
    match plan {
        PhysicalPlan::Fa => Some(Box::new(FaginsAlgorithm)),
        PhysicalPlan::Ta => Some(Box::new(ThresholdAlgorithm)),
        PhysicalPlan::Nra => Some(Box::new(NraLowerBound)),
        PhysicalPlan::Ca { h } => Some(Box::new(CombinedAlgorithm::new(h, theta))),
        PhysicalPlan::ApproxTa => Some(Box::new(ApproxTa::new(theta))),
        PhysicalPlan::ApproxNra => Some(Box::new(ApproxNra::new(theta))),
        PhysicalPlan::MaxMerge => Some(Box::new(MaxMerge)),
        PhysicalPlan::CrispFilter | PhysicalPlan::FullScan => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Algo, ShardPolicy};
    use crate::workload::independent_uniform;

    fn uniform_stats(n: usize, m: usize, seed: u64) -> QueryStats {
        let sources = independent_uniform(n, m, seed);
        QueryStats::new(
            sources
                .iter()
                .map(|s| SourceStats::new(s.grade_histogram(16).expect("vec source")))
                .collect(),
        )
    }

    #[test]
    fn uniform_costs_pick_nra_for_plain_fuzzy_queries() {
        // Measured ground truth: NRA's sorted-only cost is roughly
        // half of TA's or FA's under the uniform measure.
        let q = PlanQuery::fuzzy(300, 3, 7);
        let e = choose_plan(&q, Some(&uniform_stats(300, 3, 1)), &ExecPolicy::new());
        assert_eq!(e.chosen, PhysicalPlan::Nra, "{e}");
        assert!(matches!(e.basis, StatsBasis::Histograms { sources: 3 }));
        // All exact candidates were priced.
        let names: Vec<&str> = e.candidates.iter().map(|(p, _)| p.name()).collect();
        for want in ["threshold-ta", "nra-lower-bound", "fagin-a0", "full-scan"] {
            assert!(names.contains(&want), "{names:?}");
        }
    }

    #[test]
    fn exact_grade_queries_exclude_the_nra_family() {
        let q = PlanQuery::fuzzy(300, 3, 7).exact_grades();
        let e = choose_plan(&q, Some(&uniform_stats(300, 3, 1)), &ExecPolicy::new());
        assert!(
            !matches!(e.chosen, PhysicalPlan::Nra | PhysicalPlan::ApproxNra),
            "{e}"
        );
        assert!(e
            .candidates
            .iter()
            .all(|(p, _)| !matches!(p, PhysicalPlan::Nra | PhysicalPlan::ApproxNra)));
    }

    #[test]
    fn estimates_track_measured_costs_within_2x() {
        // The probe runs behind the formulas (see the module docs):
        // measured uniform-cost totals for n=300, m=3, k=7.
        let q = PlanQuery::fuzzy(300, 3, 7);
        let stats = uniform_stats(300, 3, 1);
        let u = CostModel::UNIFORM;
        for (plan, measured) in [
            (PhysicalPlan::Fa, 567.0),
            (PhysicalPlan::Ta, 594.0),
            (PhysicalPlan::Nra, 315.0),
        ] {
            let est = estimate_cost(plan, &q, Some(&stats), &u, 0.0).unwrap();
            assert!(
                est / measured < 2.0 && measured / est < 2.0,
                "{plan}: estimated {est:.0}, measured {measured:.0}"
            );
        }
    }

    #[test]
    fn expected_skip_discounts_full_scans_and_rejects_junk() {
        let stats = uniform_stats(1000, 2, 3);
        let u = CostModel::UNIFORM;
        let base = PlanQuery::fuzzy(1000, 2, 10);
        let full = estimate_cost(PhysicalPlan::FullScan, &base, Some(&stats), &u, 0.0).unwrap();
        let pruned = estimate_cost(
            PhysicalPlan::FullScan,
            &base.clone().expected_skip(0.75),
            Some(&stats),
            &u,
            0.0,
        )
        .unwrap();
        assert!(
            (pruned - full * 0.25).abs() < 1e-9,
            "75% skip should quarter the scan price: {pruned:.1} vs {full:.1}"
        );
        // Threshold plans are unaffected by the scan discount.
        let ta = estimate_cost(PhysicalPlan::Ta, &base, Some(&stats), &u, 0.0).unwrap();
        let ta_skip = estimate_cost(
            PhysicalPlan::Ta,
            &base.clone().expected_skip(0.75),
            Some(&stats),
            &u,
            0.0,
        )
        .unwrap();
        assert_eq!(ta, ta_skip);
        // Out-of-range and non-finite fractions are ignored.
        for junk in [-0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert_eq!(base.clone().expected_skip(junk).expected_skip, 0.0);
        }
    }

    #[test]
    fn theta_relaxation_cheapens_the_estimate() {
        let q = PlanQuery::fuzzy(1000, 2, 10);
        let stats = uniform_stats(1000, 2, 3);
        let u = CostModel::UNIFORM;
        let exact = estimate_cost(PhysicalPlan::Ta, &q, Some(&stats), &u, 0.0).unwrap();
        let approx = estimate_cost(PhysicalPlan::ApproxTa, &q, Some(&stats), &u, 0.5).unwrap();
        assert!(
            approx < exact,
            "θ-TA ({approx:.0}) should undercut exact TA ({exact:.0})"
        );
    }

    #[test]
    fn crisp_filter_wins_when_selective_loses_when_not() {
        use fmdb_core::score::Score;
        use fmdb_core::stats::GradeHistogram;
        let n = 2000usize;
        let policy = ExecPolicy::new();
        let crisp_hist = |sel: f64| {
            let matches = ((n as f64 * sel) as usize).max(1);
            let mut grades = vec![Score::ONE; matches];
            grades.extend(std::iter::repeat_n(Score::ZERO, n - matches));
            GradeHistogram::from_sorted(&grades, 16)
        };
        let fuzzy_hist = independent_uniform(n, 1, 7)
            .remove(0)
            .grade_histogram(16)
            .unwrap();
        for (sel, expect_crisp) in [(0.005, true), (0.6, false)] {
            let survivors = (n as f64 * sel) as u64;
            let q = PlanQuery::fuzzy(n, 2, 10)
                .crisp(1, survivors.max(1))
                .exact_grades();
            let stats = QueryStats::new(vec![
                SourceStats::new(crisp_hist(sel)),
                SourceStats::new(fuzzy_hist.clone()),
            ]);
            let e = choose_plan(&q, Some(&stats), &policy);
            assert_eq!(
                matches!(e.chosen, PhysicalPlan::CrispFilter),
                expect_crisp,
                "sel={sel}: {e}"
            );
        }
    }

    #[test]
    fn max_like_queries_get_the_merge() {
        let q = PlanQuery::fuzzy(500, 2, 5).combiner(CombinerKind::MaxLike);
        let e = choose_plan(&q, Some(&uniform_stats(500, 2, 2)), &ExecPolicy::new());
        assert_eq!(e.chosen, PhysicalPlan::MaxMerge, "{e}");
    }

    #[test]
    fn static_fallback_is_nra_or_ta_never_fa() {
        let q = PlanQuery::fuzzy(1000, 2, 10);
        let uniform = choose_plan(&q, None, &ExecPolicy::new());
        assert_eq!(uniform.chosen, PhysicalPlan::Ta);
        assert!(matches!(uniform.basis, StatsBasis::StaticFallback));

        let expensive =
            ExecPolicy::new().cost_model(CostModel::random_to_sorted_ratio(10.0).unwrap());
        assert_eq!(choose_plan(&q, None, &expensive).chosen, PhysicalPlan::Nra);

        let exact = PlanQuery::fuzzy(1000, 2, 10).exact_grades();
        assert_eq!(
            choose_plan(&exact, None, &expensive).chosen,
            PhysicalPlan::Ca { h: 10 }
        );

        let theta = ExecPolicy::new().theta(0.2);
        assert_eq!(choose_plan(&q, None, &theta).chosen, PhysicalPlan::ApproxTa);
        let theta_exp = theta.cost_model(CostModel::random_to_sorted_ratio(5.0).unwrap());
        assert_eq!(
            choose_plan(&q, None, &theta_exp).chosen,
            PhysicalPlan::ApproxNra
        );
    }

    #[test]
    fn expensive_random_access_moves_the_stats_choice_off_ta() {
        let q = PlanQuery::fuzzy(1000, 3, 50).exact_grades();
        let stats = uniform_stats(1000, 3, 4);
        let expensive = choose_plan(
            &q,
            Some(&stats),
            &ExecPolicy::new().cost_model(CostModel::random_to_sorted_ratio(30.0).unwrap()),
        );
        // Under expensive random access an exact-grade query shifts to
        // CA (deep interleave), never to a random-heavy plan.
        assert!(
            matches!(expensive.chosen, PhysicalPlan::Ca { .. }),
            "{expensive}"
        );
        let exp_cost = expensive.chosen_cost().unwrap();
        let ta_cost = expensive
            .candidates
            .iter()
            .find(|(p, _)| matches!(p, PhysicalPlan::Ta))
            .map(|(_, c)| *c)
            .unwrap();
        assert!(exp_cost <= ta_cost);
    }

    #[test]
    fn classify_combiner_recognizes_the_shipped_functions() {
        use fmdb_core::scoring::conorms::Max;
        use fmdb_core::scoring::means::ArithmeticMean;
        use fmdb_core::scoring::tnorms::{Min, Product};
        use fmdb_core::scoring::ConormScoring;
        assert_eq!(classify_combiner(&Min, 3), CombinerKind::ZeroAbsorbing);
        assert_eq!(classify_combiner(&Product, 2), CombinerKind::ZeroAbsorbing);
        assert_eq!(
            classify_combiner(&ConormScoring(Max), 3),
            CombinerKind::MaxLike
        );
        assert_eq!(classify_combiner(&ArithmeticMean, 2), CombinerKind::Other);
    }

    #[test]
    fn fanout_advice_is_gated_and_deterministic() {
        // Tiny corpora stay serial regardless of requested shards.
        assert_eq!(preferred_fanout(100.0, 64, 8, 256), 1);
        // Big work over a big corpus fans out, but never past the gate.
        let f = preferred_fanout(1_000_000.0, 100_000, 8, 256);
        assert!((2..=8).contains(&f), "fanout {f}");
        // Monotone consistency with the policy fold.
        let q = PlanQuery::fuzzy(100_000, 2, 10);
        let policy = ExecPolicy::new().sharding(ShardPolicy::Shards {
            shards: 8,
            min_items: 256,
        });
        let e = choose_plan(&q, None, &policy);
        assert!(e.fanout >= 1 && e.fanout <= 8);
        // Auto resolution of the plan maps back to a runnable algorithm.
        let algo = plan_algorithm(e.chosen, 0.0).expect("fallback plans are algorithms");
        assert_eq!(algo.name(), e.chosen.name());
        let _ = Algo::Auto; // silence unused import in cfg(test) builds
    }

    #[test]
    fn explain_renders_the_decision() {
        let q = PlanQuery::fuzzy(300, 2, 5);
        let e = choose_plan(&q, Some(&uniform_stats(300, 2, 9)), &ExecPolicy::new());
        let s = e.to_string();
        assert!(s.contains("plan "), "{s}");
        assert!(s.contains("candidates:"), "{s}");
        assert!(s.contains("histograms over 2 sources"), "{s}");
    }
}
