//! Standalone runner for experiment `e18_page_costs`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e18_page_costs::run(&cfg).print();
}
