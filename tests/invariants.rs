//! Tier-1 entry point for the `debug_assert!` invariant suite.
//!
//! `fmdb_core::score::Score` carries runtime range checks
//! (`debug_checked`) that fire in debug builds whenever a grade leaves
//! `[0, 1]` or goes non-finite; the scoring-function combinators are
//! the code most likely to trip them. This harness sweeps every
//! registered t-norm, t-conorm, and negation over a grade grid —
//! including round-off stressors near the interval's ends — so the
//! default `cargo test -q` exercises the invariant layer even though
//! the deeper suite lives in `crates/core/tests/invariants.rs`.

use fuzzymm::core::float;
use fuzzymm::core::score::Score;
use fuzzymm::core::scoring::conorms::all_conorms;
use fuzzymm::core::scoring::negation::all_negations;
use fuzzymm::core::scoring::tnorms::all_tnorms;
/// A grade grid with round-off stressors at both ends of `[0, 1]`.
fn sweep() -> Vec<Score> {
    let mut grid: Vec<f64> = (0..=20).map(|i| f64::from(i) / 20.0).collect();
    grid.extend([
        f64::EPSILON,
        1.0 - f64::EPSILON,
        0.1 + 0.2,       // 0.30000000000000004
        1.0 / 3.0 * 3.0, // representable 1.0, but via arithmetic
        float::EPSILON / 2.0,
    ]);
    grid.into_iter().map(Score::clamped).collect()
}

fn assert_grade(raw: Score, context: &str) {
    let v = raw.value();
    assert!(
        v.is_finite() && (0.0..=1.0).contains(&v),
        "{context} produced {v}, outside [0, 1]"
    );
}

#[test]
fn every_tnorm_stays_in_range_under_debug_asserts() {
    let grid = sweep();
    for tnorm in all_tnorms() {
        for &a in &grid {
            for &b in &grid {
                let combined = tnorm.t(a, b);
                assert_grade(combined, &tnorm.norm_name());
            }
        }
    }
}

#[test]
fn every_conorm_stays_in_range_under_debug_asserts() {
    let grid = sweep();
    for conorm in all_conorms() {
        for &a in &grid {
            for &b in &grid {
                let combined = conorm.s(a, b);
                assert_grade(combined, &conorm.conorm_name());
            }
        }
    }
}

#[test]
fn every_negation_stays_in_range_under_debug_asserts() {
    let grid = sweep();
    for negation in all_negations() {
        for &a in &grid {
            let negated = negation.n(a);
            assert_grade(negated, &negation.negation_name());
        }
    }
}

#[test]
fn score_construction_enforces_the_grade_invariant() {
    // `clamped` accepts anything and lands in range.
    for raw in [-1.0, -0.0, 0.5, 1.0 + f64::EPSILON, 2.0] {
        assert_grade(Score::clamped(raw), "Score::clamped");
    }
    // Crispness checks are epsilon-tolerant, matching the shared
    // `fmdb_core::float` epsilon rather than bit equality.
    assert!(Score::clamped(1.0 - float::EPSILON / 2.0).is_crisp());
    assert!(Score::clamped(float::EPSILON / 2.0).is_crisp());
    assert!(!Score::clamped(0.5).is_crisp());
}
