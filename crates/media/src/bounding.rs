//! Distance bounding — the \[HSE+95\] filter from §2.1.
//!
//! The full quadratic-form distance over `k` bins costs O(k²); Hafner
//! et al. associate with each histogram `x` a short (3-dimensional)
//! vector `x̂` — the average color — and a cheap distance `d̂` with the
//! **filter guarantee** of the paper's inequality (2):
//!
//! ```text
//! d(x, y) ≥ d̂(x̂, ŷ)
//! ```
//!
//! so `d̂` can discard objects with zero false dismissals.
//!
//! Our constant is derived rather than assumed — and it is the *best
//! possible* one of its form. With `z = x − y` (a zero-sum vector,
//! since histograms are normalized) and `C` the 3×k centroid map
//! (`x̂ = Cx`), the filter guarantee `zᵀAz ≥ c·‖Cz‖²` holds for all
//! zero-sum `z` iff `A − c·CᵀC` is positive semidefinite on the
//! zero-sum subspace. We binary-search the largest such `c` using an
//! exact Cholesky PSD test on the ridge-projected matrix
//! (`P(A − cCᵀC)P + J`, see
//! [`crate::linalg::SymMatrix::project_zero_sum_with_ridge`]), then
//! take `d̂(x̂, ŷ) = √c·‖x̂ − ŷ‖`. A small multiplicative safety margin
//! absorbs floating-point slack so the guarantee holds *numerically*,
//! which the property tests then hammer on.

use std::fmt;

use crate::color::{ColorError, ColorHistogram, ColorSpace};
use crate::distance::{DistanceError, QuadraticFormDistance};

/// Relative precision of the binary search for the filter constant.
const SEARCH_STEPS: usize = 60;

/// Multiplicative safety margin on the filter constant, absorbing
/// Cholesky round-off at the PSD boundary.
const SAFETY: f64 = 1.0 - 1e-6;

/// Error constructing a [`DistanceBound`].
#[derive(Debug, Clone, PartialEq)]
pub enum BoundError {
    /// The similarity matrix is (numerically) degenerate on the
    /// zero-sum subspace, so only the trivial bound `d̂ = 0` exists.
    DegenerateSpectrum {
        /// The estimated minimal eigenvalue.
        lambda: f64,
    },
    /// Dimension mismatch between space and matrix.
    Distance(DistanceError),
    /// Histogram error.
    Color(ColorError),
}

impl fmt::Display for BoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundError::DegenerateSpectrum { lambda } => write!(
                f,
                "similarity matrix is degenerate on the zero-sum subspace (λ ≈ {lambda:e})"
            ),
            BoundError::Distance(e) => write!(f, "{e}"),
            BoundError::Color(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BoundError {}

impl From<DistanceError> for BoundError {
    fn from(e: DistanceError) -> Self {
        BoundError::Distance(e)
    }
}

impl From<ColorError> for BoundError {
    fn from(e: ColorError) -> Self {
        BoundError::Color(e)
    }
}

/// The 3-dimensional summary of a histogram: its average color, plus
/// the owning filter's scale baked in at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShortVector {
    /// Average color scaled so plain Euclidean distance between short
    /// vectors *is* the lower bound `d̂`.
    pub coords: [f64; 3],
}

impl ShortVector {
    /// Euclidean distance to another short vector — this is `d̂`.
    pub fn distance(&self, other: &ShortVector) -> f64 {
        let mut s = 0.0;
        for d in 0..3 {
            let diff = self.coords[d] - other.coords[d];
            s += diff * diff;
        }
        s.sqrt()
    }
}

/// The distance-bounding filter: maps histograms to [`ShortVector`]s
/// whose Euclidean distance provably lower-bounds the quadratic-form
/// distance.
#[derive(Debug, Clone)]
pub struct DistanceBound {
    scale: f64,
    space: ColorSpace,
}

impl DistanceBound {
    /// Derives the filter for `space`'s QBIC similarity matrix.
    pub fn for_space(space: &ColorSpace) -> Result<DistanceBound, BoundError> {
        let a = space.similarity_matrix();
        let gram = space.centroid_map().gram();

        // PSD test for A − c·CᵀC on the zero-sum subspace, with a tiny
        // negative shift absorbed into the ridge projection's exact
        // Cholesky so borderline values fail safe.
        let psd_at = |c: f64| -> bool {
            match a.add_scaled(&gram, -c) {
                Ok(m) => m.project_zero_sum_with_ridge().is_positive_definite(),
                Err(_) => false,
            }
        };

        if !psd_at(0.0) {
            // A itself is not PSD on the subspace — no filter exists.
            let lambda = a.min_eigenvalue_zero_sum(400);
            return Err(BoundError::DegenerateSpectrum { lambda });
        }
        // Bracket the PSD boundary: grow `hi` until it fails.
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        let mut grow = 0;
        while psd_at(hi) && grow < 60 {
            lo = hi;
            hi *= 2.0;
            grow += 1;
        }
        for _ in 0..SEARCH_STEPS {
            let mid = 0.5 * (lo + hi);
            if psd_at(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        if lo <= 0.0 {
            return Err(BoundError::DegenerateSpectrum { lambda: 0.0 });
        }
        Ok(DistanceBound {
            scale: SAFETY * lo.sqrt(),
            space: space.clone(),
        })
    }

    /// The looser **two-stage** spectral bound
    /// `d ≥ (√λ_min(A)/σ_max(C))·‖x̂ − ŷ‖`, kept as an ablation
    /// baseline (experiment E17): it chains two worst cases through
    /// `‖z‖` and is an order of magnitude weaker than the PSD-optimal
    /// constant [`DistanceBound::for_space`] derives — weak enough
    /// that the filter stops filtering.
    pub fn for_space_two_stage(space: &ColorSpace) -> Result<DistanceBound, BoundError> {
        let a = space.similarity_matrix();
        let lambda = a.min_eigenvalue_zero_sum(400);
        if lambda <= 1e-12 {
            return Err(BoundError::DegenerateSpectrum { lambda });
        }
        let sigma = space.centroid_map().max_singular_value(400).max(1e-12);
        Ok(DistanceBound {
            scale: SAFETY * lambda.sqrt() / sigma,
            space: space.clone(),
        })
    }

    /// The scale factor (with safety margin) such that
    /// `d̂ = scale·‖x̄ − ȳ‖`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Projects a histogram to its short vector.
    pub fn project(&self, hist: &ColorHistogram) -> Result<ShortVector, BoundError> {
        let avg = hist.average_color(&self.space)?;
        Ok(ShortVector {
            coords: [
                avg[0] * self.scale,
                avg[1] * self.scale,
                avg[2] * self.scale,
            ],
        })
    }

    /// The cheap lower-bound distance `d̂(x̂, ŷ)` directly from
    /// histograms (projecting both). Costs O(k), vs O(k²) for the full
    /// distance.
    pub fn lower_bound(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, BoundError> {
        Ok(self.project(x)?.distance(&self.project(y)?))
    }
}

/// Convenience: the paired full distance and filter for one space.
#[derive(Debug, Clone)]
pub struct BoundedDistance {
    /// The exact quadratic-form distance (eq. (1)).
    pub full: QuadraticFormDistance,
    /// The lower-bounding filter (ineq. (2)).
    pub filter: DistanceBound,
}

impl BoundedDistance {
    /// Builds both from a color space.
    pub fn for_space(space: &ColorSpace) -> Result<BoundedDistance, BoundError> {
        Ok(BoundedDistance {
            full: QuadraticFormDistance::new(space.similarity_matrix()),
            filter: DistanceBound::for_space(space)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;
    use crate::distance::HistogramDistance;

    fn space() -> ColorSpace {
        ColorSpace::rgb_grid(3).unwrap()
    }

    /// Structured + pseudo-random histograms for guarantee sweeps.
    fn sample_histograms(space: &ColorSpace, count: usize) -> Vec<ColorHistogram> {
        let k = space.k();
        let mut out = vec![
            ColorHistogram::pure(space, Rgb::RED),
            ColorHistogram::pure(space, Rgb::GREEN),
            ColorHistogram::pure(space, Rgb::BLUE),
        ];
        for seed in 0..count as u64 {
            let masses: Vec<f64> = (0..k)
                .map(|i| {
                    let h = (i as u64 + 1).wrapping_mul(seed.wrapping_mul(2654435761) + 97);
                    ((h % 1000) as f64 / 1000.0).powi(2) + 1e-6
                })
                .collect();
            out.push(ColorHistogram::from_masses(masses).unwrap());
        }
        out
    }

    #[test]
    fn filter_constant_is_positive() {
        let b = DistanceBound::for_space(&space()).unwrap();
        assert!(b.scale() > 0.0);
    }

    #[test]
    fn inequality_2_holds_on_sample_sweep() {
        let sp = space();
        let bd = BoundedDistance::for_space(&sp).unwrap();
        let hists = sample_histograms(&sp, 40);
        let mut checked = 0;
        for x in &hists {
            for y in &hists {
                let full = bd.full.distance(x, y).unwrap();
                let lower = bd.filter.lower_bound(x, y).unwrap();
                assert!(
                    full + 1e-9 >= lower,
                    "filter violated: d={full} < d̂={lower}"
                );
                checked += 1;
            }
        }
        assert!(checked > 1000);
    }

    #[test]
    fn inequality_holds_for_k64_too() {
        let sp = ColorSpace::rgb_grid(4).unwrap(); // k = 64, the paper's typical size
        let bd = BoundedDistance::for_space(&sp).unwrap();
        let hists = sample_histograms(&sp, 15);
        for x in &hists {
            for y in &hists {
                let full = bd.full.distance(x, y).unwrap();
                let lower = bd.filter.lower_bound(x, y).unwrap();
                assert!(full + 1e-9 >= lower);
            }
        }
    }

    #[test]
    fn filter_is_not_trivially_zero() {
        // The bound must separate far-apart colors, otherwise it would
        // never filter anything.
        let sp = space();
        let bd = BoundedDistance::for_space(&sp).unwrap();
        let red = ColorHistogram::pure(&sp, Rgb::RED);
        let blue = ColorHistogram::pure(&sp, Rgb::BLUE);
        assert!(bd.filter.lower_bound(&red, &blue).unwrap() > 0.01);
    }

    #[test]
    fn short_vector_distance_is_a_metric_on_samples() {
        let sp = space();
        let bd = DistanceBound::for_space(&sp).unwrap();
        let hists = sample_histograms(&sp, 10);
        let shorts: Vec<ShortVector> = hists.iter().map(|h| bd.project(h).unwrap()).collect();
        for a in &shorts {
            for b in &shorts {
                assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
                for c in &shorts {
                    assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn projection_rejects_mismatched_space() {
        let sp3 = space();
        let sp2 = ColorSpace::rgb_grid(2).unwrap();
        let bd = DistanceBound::for_space(&sp3).unwrap();
        let h = ColorHistogram::pure(&sp2, Rgb::RED);
        assert!(matches!(bd.project(&h), Err(BoundError::Color(_))));
    }
}
