//! # fmdb-core — fuzzy query foundations
//!
//! Core types for fuzzy queries in multimedia database systems, after
//! Ronald Fagin, *"Fuzzy Queries in Multimedia Database Systems"*,
//! PODS 1998:
//!
//! * [`score`] — grades in `[0, 1]` ([`score::Score`]);
//! * [`float`] — the workspace's single float-comparison epsilon and
//!   approx helpers (raw float `==` is linted away by `cargo xtask
//!   lint`);
//! * [`graded_set`] — Zadeh graded ("fuzzy") sets, the common
//!   generalization of a set and a sorted list;
//! * [`scoring`] — scoring functions for Boolean combinations: t-norms,
//!   co-norms, negations, means, and runtime axiom auditing
//!   (Theorem 3.1 machinery);
//! * [`weights`] — the Fagin–Wimmers formula for weighting the
//!   importance of subqueries (§5, \[FW97\]);
//! * [`query`] — the query AST (atomic queries and their Boolean
//!   combinations) with reference grading semantics;
//! * [`request`] — validated, source-independent top-k request
//!   parameters ([`request::TopKSpec`]), bound to concrete sources by
//!   the middleware's `TopKRequest`;
//! * [`stats`] — equi-depth grade-distribution histograms
//!   ([`stats::GradeHistogram`]), the per-source statistics the
//!   middleware's cost-based planner prices strategies with.
//!
//! Algorithms that *evaluate* queries against subsystems with sorted
//! and random access live in the `fmdb-middleware` crate; this crate is
//! purely the semantic layer.
//!
//! ```
//! use fmdb_core::prelude::*;
//!
//! // Grade the paper's running example by hand.
//! let q = Query::and(vec![
//!     Query::atomic("Artist", Target::Text("Beatles".into())),
//!     Query::atomic("AlbumColor", Target::Similar("red".into())),
//! ]);
//! let grade = q
//!     .grade(&|atom| {
//!         Some(match atom.attribute.as_str() {
//!             "Artist" => Score::crisp(true),
//!             _ => Score::clamped(0.83),
//!         })
//!     })
//!     .unwrap();
//! assert!(grade.approx_eq(Score::clamped(0.83), 1e-12));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod float;
pub mod graded_set;
pub mod query;
pub mod request;
pub mod score;
pub mod scoring;
pub mod stats;
pub mod weights;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::graded_set::GradedSet;
    pub use crate::query::{AtomicQuery, Query, Target};
    pub use crate::request::TopKSpec;
    pub use crate::score::{Score, ScoredObject};
    pub use crate::scoring::conorms::Max;
    pub use crate::scoring::means::ArithmeticMean;
    pub use crate::scoring::tnorms::{Min, Product};
    pub use crate::scoring::{Conorm, ConormScoring, ScoringFunction, TNorm};
    pub use crate::stats::GradeHistogram;
    pub use crate::weights::{weighted_combine, Weighted, Weighting};
}
