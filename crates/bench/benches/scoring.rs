//! Criterion micro-benchmarks: scoring-function combine throughput
//! (the inner loop of every evaluation algorithm).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_core::score::Score;
use fmdb_core::scoring::means::ArithmeticMean;
use fmdb_core::scoring::tnorms::{Lukasiewicz, Min, Product, Yager};
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::weights::{Weighted, Weighting};

fn tuples(m: usize, count: usize) -> Vec<Vec<Score>> {
    (0..count)
        .map(|i| {
            (0..m)
                .map(|j| Score::clamped(((i * 31 + j * 17) % 100) as f64 / 100.0))
                .collect()
        })
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring_combine");
    let data = tuples(4, 1024);
    let fns: Vec<(&str, Box<dyn ScoringFunction>)> = vec![
        ("min", Box::new(Min)),
        ("product", Box::new(Product)),
        ("lukasiewicz", Box::new(Lukasiewicz)),
        ("yager2", Box::new(Yager::new(2.0).expect("valid p"))),
        ("arith-mean", Box::new(ArithmeticMean)),
        (
            "weighted-min",
            Box::new(Weighted::new(
                Min,
                Weighting::new(vec![0.4, 0.3, 0.2, 0.1]).expect("valid weighting"),
            )),
        ),
    ];
    for (name, f) in &fns {
        group.bench_with_input(BenchmarkId::new("m4", name), f, |b, f| {
            b.iter(|| {
                let mut acc = 0.0;
                for t in &data {
                    acc += f.combine(black_box(t)).value();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
