//! Negation scoring functions.
//!
//! The paper's standard rule (§3) is `μ_{¬A}(x) = 1 − μ_A(x)`. The
//! Bonissone–Decker De Morgan laws quoted there hold "for suitable
//! negation scoring functions n (such as the standard n(x) = 1 − x)";
//! we ship the standard negation plus the Sugeno and Yager families
//! commonly used in the fuzzy-sets literature, all of which are strict
//! (strictly decreasing), involutive-or-not as documented.

use crate::score::Score;

/// A fuzzy negation: a decreasing function `n : [0,1] → [0,1]` with
/// `n(0) = 1` and `n(1) = 0`.
pub trait Negation {
    /// Applies the negation.
    fn n(&self, x: Score) -> Score;

    /// A short human-readable name.
    fn negation_name(&self) -> String;

    /// Whether `n(n(x)) = x` for all x.
    fn is_involutive(&self) -> bool;
}

/// The standard negation `n(x) = 1 − x` — involutive, and the one under
/// which the shipped t-norm/co-norm pairs are De Morgan duals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Standard;

impl Negation for Standard {
    #[inline]
    fn n(&self, x: Score) -> Score {
        x.negate()
    }

    fn negation_name(&self) -> String {
        "standard".to_owned()
    }

    fn is_involutive(&self) -> bool {
        true
    }
}

/// The Sugeno negation family `n(x) = (1 − x) / (1 + λx)` for `λ > −1`.
/// Involutive for every λ; `λ = 0` is the standard negation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sugeno {
    lambda: f64,
}

impl Sugeno {
    /// Creates a Sugeno negation. Returns `None` unless `λ > −1`, finite.
    pub fn new(lambda: f64) -> Option<Sugeno> {
        (lambda > -1.0 && lambda.is_finite()).then_some(Sugeno { lambda })
    }

    /// The family parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Negation for Sugeno {
    #[inline]
    fn n(&self, x: Score) -> Score {
        let v = x.value();
        Score::clamped((1.0 - v) / (1.0 + self.lambda * v))
    }

    fn negation_name(&self) -> String {
        format!("sugeno({})", self.lambda)
    }

    fn is_involutive(&self) -> bool {
        true
    }
}

/// The Yager negation family `n(x) = (1 − x^w)^(1/w)` for `w > 0`.
/// Involutive for every w; `w = 1` is the standard negation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YagerNeg {
    w: f64,
}

impl YagerNeg {
    /// Creates a Yager negation. Returns `None` unless `w > 0`, finite.
    pub fn new(w: f64) -> Option<YagerNeg> {
        (w > 0.0 && w.is_finite()).then_some(YagerNeg { w })
    }

    /// The family exponent w.
    pub fn w(&self) -> f64 {
        self.w
    }
}

impl Negation for YagerNeg {
    #[inline]
    fn n(&self, x: Score) -> Score {
        Score::clamped((1.0 - x.value().powf(self.w)).powf(1.0 / self.w))
    }

    fn negation_name(&self) -> String {
        format!("yager-neg({})", self.w)
    }

    fn is_involutive(&self) -> bool {
        true
    }
}

/// Every shipped negation, boxed.
pub fn all_negations() -> Vec<Box<dyn Negation>> {
    vec![
        Box::new(Standard),
        // lint:allow(no-panic): constant parameter; Sugeno::new accepts any lambda > -1
        Box::new(Sugeno::new(-0.5).expect("-0.5 is a valid lambda")),
        // lint:allow(no-panic): constant parameter; Sugeno::new accepts any lambda > -1
        Box::new(Sugeno::new(2.0).expect("2 is a valid lambda")),
        // lint:allow(no-panic): constant parameter; YagerNeg::new accepts any w > 0
        Box::new(YagerNeg::new(2.0).expect("2 is a valid w")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Score> {
        [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
            .iter()
            .map(|&v| Score::clamped(v))
            .collect()
    }

    #[test]
    fn boundary_conditions() {
        for n in all_negations() {
            assert!(
                n.n(Score::ZERO).approx_eq(Score::ONE, 1e-12),
                "{}: n(0) != 1",
                n.negation_name()
            );
            assert!(
                n.n(Score::ONE).approx_eq(Score::ZERO, 1e-12),
                "{}: n(1) != 0",
                n.negation_name()
            );
        }
    }

    #[test]
    fn negations_are_decreasing() {
        for n in all_negations() {
            let g = grid();
            for w in g.windows(2) {
                assert!(
                    n.n(w[0]) >= n.n(w[1]),
                    "{}: not decreasing",
                    n.negation_name()
                );
            }
        }
    }

    #[test]
    fn claimed_involutions_hold() {
        for n in all_negations() {
            if n.is_involutive() {
                for &x in &grid() {
                    assert!(
                        n.n(n.n(x)).approx_eq(x, 1e-9),
                        "{}: not involutive at {x}",
                        n.negation_name()
                    );
                }
            }
        }
    }

    #[test]
    fn sugeno_zero_is_standard() {
        let s0 = Sugeno::new(0.0).unwrap();
        for &x in &grid() {
            assert!(s0.n(x).approx_eq(Standard.n(x), 1e-12));
        }
    }

    #[test]
    fn yager_one_is_standard() {
        let y1 = YagerNeg::new(1.0).unwrap();
        for &x in &grid() {
            assert!(y1.n(x).approx_eq(Standard.n(x), 1e-12));
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Sugeno::new(-1.0).is_none());
        assert!(Sugeno::new(f64::NAN).is_none());
        assert!(YagerNeg::new(0.0).is_none());
    }
}
