//! The buffer pool: lock-striped LRU page frames with pin counts.
//!
//! This is the engine's [`crate::engine::GradeCache`] machinery
//! ([`LruCore`]) generalized to page frames: `N` independent LRU
//! segments behind their own mutexes, selected by page-number hash,
//! each counting hits, misses, and evictions. Frames are
//! `Arc<Vec<u8>>`; a frame whose `Arc` is still held by a reader is
//! *pinned* — the eviction loop refreshes it instead of dropping it,
//! so a page a cursor is decoding can never be yanked out from under
//! it (the pool temporarily exceeds capacity if every frame is
//! pinned).
//!
//! Actual storage reads happen *outside* the stripe locks (the caller
//! reads, then [`PagePool::insert`]s), so a slow disk never serializes
//! unrelated pages. Two threads missing the same page concurrently may
//! both read it — a benign duplicated read, counted twice, which is
//! exactly what happened physically.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError};

use crate::lru::LruCore;
use crate::stats::PageIoStats;

/// One page frame: immutable page bytes shared with readers.
pub(crate) type Frame = Arc<Vec<u8>>;

/// Number of independent LRU segments (mirrors the grade cache).
const POOL_STRIPES: usize = 8;

/// A lock-striped LRU pool of page frames with pin-aware eviction and
/// cumulative hit/read/eviction counters.
#[derive(Debug)]
pub(crate) struct PagePool {
    stripes: Vec<Mutex<LruCore<u64, Frame>>>,
    /// Pages actually read from storage (misses the caller resolved
    /// plus read-ahead loads).
    reads: AtomicU64,
    /// The subset of `reads` issued by the read-ahead worker.
    readahead_loads: AtomicU64,
}

impl PagePool {
    /// A pool holding at least `capacity` frames across
    /// [`POOL_STRIPES`] segments (0 disables caching — every access
    /// reads storage).
    pub(crate) fn new(capacity: usize) -> PagePool {
        let per = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(POOL_STRIPES)
        };
        PagePool {
            stripes: (0..POOL_STRIPES)
                .map(|_| Mutex::new(LruCore::new(per)))
                .collect(),
            reads: AtomicU64::new(0),
            readahead_loads: AtomicU64::new(0),
        }
    }

    fn stripe(&self, page: u64) -> &Mutex<LruCore<u64, Frame>> {
        let h = page.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.stripes[(h >> 32) as usize % self.stripes.len()]
    }

    fn lock(stripe: &Mutex<LruCore<u64, Frame>>) -> std::sync::MutexGuard<'_, LruCore<u64, Frame>> {
        stripe.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks a page up, counting a hit or a miss.
    pub(crate) fn get(&self, page: u64) -> Option<Frame> {
        Self::lock(self.stripe(page)).get(page)
    }

    /// True when the page is resident (no counters touched) — the
    /// read-ahead worker's guard against redundant loads.
    pub(crate) fn contains(&self, page: u64) -> bool {
        Self::lock(self.stripe(page)).peek(page).is_some()
    }

    /// Installs a freshly read page, evicting unpinned LRU frames
    /// beyond capacity, and counts the storage read that produced it.
    pub(crate) fn insert(&self, page: u64, frame: Frame) {
        self.reads.fetch_add(1, Relaxed);
        Self::lock(self.stripe(page)).insert_with(page, frame, |f| Arc::strong_count(f) > 1);
    }

    /// [`PagePool::insert`] for the read-ahead worker: also counted in
    /// [`PageIoStats`]-adjacent telemetry as a read-ahead load.
    pub(crate) fn insert_readahead(&self, page: u64, frame: Frame) {
        self.readahead_loads.fetch_add(1, Relaxed);
        self.insert(page, frame);
    }

    /// Cumulative pool counters (per-stripe-consistent snapshot, like
    /// [`crate::engine::StripedGradeCache::counters`]).
    pub(crate) fn stats(&self) -> PageIoStats {
        let (hits, evictions) = self.stripes.iter().fold((0, 0), |(h, e), s| {
            let guard = Self::lock(s);
            (h + guard.hits(), e + guard.evictions())
        });
        // `skipped` is a drain-level notion (pages never requested at
        // all), so the store tracks it outside the pool and folds it in.
        PageIoStats {
            reads: self.reads.load(Relaxed),
            hits,
            evictions,
            skipped: 0,
        }
    }

    /// Pages loaded by the read-ahead worker so far.
    pub(crate) fn readahead_loads(&self) -> u64 {
        self.readahead_loads.load(Relaxed)
    }

    /// Frames currently resident.
    pub(crate) fn resident(&self) -> usize {
        self.stripes.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// Drops every frame **and** resets the counters — how benchmarks
    /// return to a cold pool without reopening the file.
    pub(crate) fn clear(&self) {
        for s in &self.stripes {
            Self::lock(s).clear();
        }
        self.reads.store(0, Relaxed);
        self.readahead_loads.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_hits_reads_and_evictions() {
        let pool = PagePool::new(8);
        assert!(pool.get(0).is_none());
        pool.insert(0, Arc::new(vec![0u8; 16]));
        assert!(pool.get(0).is_some());
        let s = pool.stats();
        assert_eq!((s.reads, s.hits), (1, 1));

        for p in 1..100 {
            pool.insert(p, Arc::new(vec![0u8; 16]));
        }
        assert!(pool.stats().evictions > 0);
        assert!(pool.resident() <= 16, "capacity is per-stripe rounded up");
    }

    #[test]
    fn pinned_frames_survive_pressure() {
        let pool = PagePool::new(8);
        pool.insert(0, Arc::new(vec![7u8; 16]));
        let pinned = pool.get(0).expect("just inserted");
        for p in 1..200 {
            pool.insert(p, Arc::new(vec![0u8; 16]));
        }
        assert!(
            pool.contains(0),
            "a frame with a live reader must not be evicted"
        );
        drop(pinned);
    }

    #[test]
    fn clear_resets_everything() {
        let pool = PagePool::new(4);
        pool.insert(0, Arc::new(Vec::new()));
        let _ = pool.get(0);
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PageIoStats::ZERO);
    }

    #[test]
    fn zero_capacity_pool_never_caches() {
        let pool = PagePool::new(0);
        pool.insert(0, Arc::new(Vec::new()));
        assert!(pool.get(0).is_none());
        assert_eq!(pool.stats().reads, 1, "the read still happened");
    }
}
