//! Criterion benchmarks: k-NN under the three access methods of §2.1 —
//! the wall-clock companion to experiment E8's access-count curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_index::gridfile::GridFile;
use fmdb_index::quadtree::QuadTree;
use fmdb_index::rtree::RTree;
use fmdb_index::scan::LinearScan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    group.sample_size(20);
    let n = 8192;
    let k = 10;
    for dim in [2usize, 8, 16] {
        let points = random_points(n, dim, 5);
        let queries = random_points(32, dim, 6);

        let mut tree = RTree::new(dim).expect("positive dim");
        let mut scan = LinearScan::new(dim).expect("positive dim");
        let mut grid = GridFile::new(dim, 16, 1 << 22).expect("positive dim");
        let mut quad = QuadTree::new(dim, 16, 1 << 22).expect("supported dim");
        let mut grid_ok = true;
        let mut quad_ok = true;
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as u64).expect("valid point");
            scan.insert(p, i as u64).expect("valid point");
            if grid_ok {
                grid_ok = grid.insert(p, i as u64).is_ok();
            }
            if quad_ok {
                quad_ok = quad.insert(p, i as u64).is_ok();
            }
        }

        group.bench_function(BenchmarkId::new("rtree", dim), |b| {
            b.iter(|| {
                for q in &queries {
                    let _ = tree.knn(q, k).expect("valid query");
                }
            })
        });
        group.bench_function(BenchmarkId::new("scan", dim), |b| {
            b.iter(|| {
                for q in &queries {
                    let _ = scan.knn(q, k).expect("valid query");
                }
            })
        });
        if grid_ok {
            group.bench_function(BenchmarkId::new("gridfile", dim), |b| {
                b.iter(|| {
                    for q in &queries {
                        let _ = grid.knn(q, k).expect("valid query");
                    }
                })
            });
        }
        if quad_ok {
            group.bench_function(BenchmarkId::new("quadtree", dim), |b| {
                b.iter(|| {
                    for q in &queries {
                        let _ = quad.knn(q, k).expect("valid query");
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
